// Telemetry-layer tests (DESIGN.md §13): registry merge determinism
// across thread counts, log2 histogram bucket boundaries, span ring
// wraparound, trace-export JSON validity from a forked two-process socket
// run, and the determinism contract — run digests are bit-identical with
// telemetry enabled, disabled, or compiled out (NOW_OBS=OFF builds this
// same file and the pinned digest must not move).
#include "obs/obs.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/socket_transport.hpp"
#include "obs/json.hpp"
#include "sim/shard_runtime.hpp"

namespace now::obs {
namespace {

namespace fs = std::filesystem;

/// Registry and SpanRecorder are process-wide singletons, so every test
/// scopes its recording window and drops its events on the way out.
class ObsEnabledScope {
 public:
  ObsEnabledScope() { set_enabled(true); }
  ~ObsEnabledScope() {
    set_enabled(false);
    SpanRecorder::instance().reset();
    Registry::instance().reset();
  }
};

// ------------------------------------------------------------- registry

TEST(RegistryTest, CounterMergeIsExactAcrossThreadCounts) {
  ObsEnabledScope obs;
  auto& reg = Registry::instance();
  const MetricId id = reg.counter("test.merge.counter");
  ASSERT_NE(id, kNoMetric);

  std::uint64_t expected = 0;
  for (const std::size_t threads : {1u, 2u, 7u}) {
    constexpr std::uint64_t kAddsPerThread = 10000;
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&reg, id] {
        for (std::uint64_t i = 0; i < kAddsPerThread; ++i) reg.add(id, 1);
      });
    }
    for (auto& th : pool) th.join();
    expected += threads * kAddsPerThread;
    // The read-time merge sums every thread shard: the total is exact no
    // matter how many threads contributed or when they exited.
    EXPECT_EQ(reg.counter_value(id), expected);
  }
}

TEST(RegistryTest, InternReturnsStableIdsAndChecksKinds) {
  ObsEnabledScope obs;
  auto& reg = Registry::instance();
  const MetricId a = reg.counter("test.intern.a");
  EXPECT_EQ(reg.counter("test.intern.a"), a);
  EXPECT_EQ(reg.name_of(a), "test.intern.a");
  EXPECT_EQ(reg.kind_of(a), MetricKind::kCounter);
  EXPECT_THROW(reg.histogram("test.intern.a"), std::logic_error);
}

TEST(RegistryTest, DisabledWritesDropTheirValue) {
  auto& reg = Registry::instance();
  const MetricId id = reg.counter("test.disabled.counter");
  set_enabled(false);
  reg.add(id, 5);
  EXPECT_EQ(reg.counter_value(id), 0u);
  {
    ObsEnabledScope obs;
    reg.add(id, 5);
    EXPECT_EQ(reg.counter_value(id), 5u);
  }
  // The scope's reset() zeroed it again.
  EXPECT_EQ(reg.counter_value(id), 0u);
}

TEST(RegistryTest, HistogramBucketsAreLog2WithExactBoundaries) {
  ObsEnabledScope obs;
  auto& reg = Registry::instance();
  const MetricId id = reg.histogram("test.hist.boundaries");
  ASSERT_NE(id, kNoMetric);

  // Bucket 0 holds the value 0; bucket b >= 1 holds [2^(b-1), 2^b - 1].
  reg.observe(id, 0);  // bucket 0
  reg.observe(id, 1);  // bucket 1
  reg.observe(id, 2);  // bucket 2 lower bound
  reg.observe(id, 3);  // bucket 2 upper bound
  reg.observe(id, 4);  // bucket 3 lower bound
  reg.observe(id, 7);  // bucket 3 upper bound
  reg.observe(id, 8);  // bucket 4
  reg.observe(id, (1ull << 33) - 1);  // bucket 33 upper bound
  reg.observe(id, 1ull << 33);        // bucket 34 lower bound
  reg.observe(id, ~0ull);             // bucket 64 (top bucket)

  const auto buckets = reg.histogram_buckets(id);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 2u);
  EXPECT_EQ(buckets[3], 2u);
  EXPECT_EQ(buckets[4], 1u);
  EXPECT_EQ(buckets[33], 1u);
  EXPECT_EQ(buckets[34], 1u);
  EXPECT_EQ(buckets[64], 1u);
  EXPECT_EQ(reg.histogram_count(id), 10u);
}

// ------------------------------------------------------- span recorder

TEST(SpanRecorderTest, RingOverwritesOldestOnWraparound) {
  ObsEnabledScope obs;
  auto& rec = SpanRecorder::instance();
  rec.set_capacity(4);
  const std::uint32_t name = rec.intern("test.ring.event");

  for (std::uint64_t i = 0; i < 7; ++i) {
    rec.instant(Cat::kShard, name, /*arg0=*/i);
  }
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first: events 0..2 were overwritten, 3..6 survive in order.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].arg0, i + 3);
    EXPECT_EQ(events[i].name, name);
    EXPECT_FALSE(events[i].is_span);
  }
  rec.set_capacity(1u << 16);  // restore the default for later tests
}

TEST(SpanRecorderTest, ScopedSpanWritesOutNsEvenWhenRecordingDisabled) {
  set_enabled(false);
  std::uint64_t measured = ~0ull;
  {
    ScopedSpan span(Cat::kStep, "test.span.disabled", &measured);
  }
  if (kCompiledIn) {
    // Recording is off but the caller asked for the duration: the span
    // still reads the clock (this keeps OpReport's *_ns fields filled).
    EXPECT_NE(measured, ~0ull);
    EXPECT_EQ(SpanRecorder::instance().snapshot().size(), 0u);
  } else {
    EXPECT_EQ(measured, ~0ull);  // NOW_OBS=OFF: hooks are no-ops
  }
}

// --------------------------------------------------------- trace export

/// Forks one worker for `shard` that runs over real local TCP with
/// telemetry enabled and writes its OBS file before exiting.
pid_t spawn_obs_worker(const sim::ShardSpec& spec, std::size_t shard,
                       std::uint16_t port, const std::string& obs_path) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  int code = 0;
  try {
    set_enabled(true);
    auto spoke = net::SocketSpoke::connect(port, shard);
    sim::run_worker(spec, shard, *spoke);
    if (!write_obs_file(obs_path, "shard" + std::to_string(shard))) code = 1;
  } catch (...) {
    code = 1;
  }
  std::_Exit(code);
}

TEST(TraceExportTest, ForkedTwoProcessRunWritesValidTraceEventJson) {
  if (!kCompiledIn) GTEST_SKIP() << "NOW_OBS=OFF: no spans to export";

  sim::ShardSpec spec;
  spec.num_shards = 2;
  spec.steps = 4;
  spec.batch_ops = 2;
  spec.n0 = 24;
  spec.seed = 29;

  const fs::path dir =
      fs::temp_directory_path() /
      ("now_obs_test_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string worker_path = (dir / "OBS_shard1.json").string();
  const std::string hub_path = (dir / "OBS_hub.json").string();

  auto hub = net::SocketHub::listen(spec.num_shards);
  std::vector<pid_t> pids;
  pids.push_back(spawn_obs_worker(spec, 1, hub->port(), worker_path));

  sim::ShardRunResult result;
  {
    ObsEnabledScope obs;
    // Shard 0 runs in this process so the hub's file also carries spans.
    std::thread local_worker([&] {
      auto spoke = net::SocketSpoke::connect(hub->port(), 0);
      sim::run_worker(spec, 0, *spoke);
    });
    hub->accept_initial();
    result = sim::run_hub(spec, *hub, *hub);
    local_worker.join();
    ASSERT_TRUE(write_obs_file(hub_path, "hub"));
  }
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }
  EXPECT_NE(result.run_digest, 0u);

  // Both files must parse as the OBS schema: a Perfetto-loadable document
  // with a nowObs sidecar (EXPERIMENTS.md "OBS file schema").
  for (const std::string& path : {hub_path, worker_path}) {
    SCOPED_TRACE(path);
    const json::ValuePtr doc = json::parse_file(path);
    ASSERT_TRUE(doc->is_object());

    const json::Value* meta = doc->get("nowObs");
    ASSERT_NE(meta, nullptr);
    EXPECT_EQ(meta->get("obs_format")->as_u64(), 1u);
    EXPECT_GT(meta->get("epoch_wall_us")->as_u64(), 0u);
    EXPECT_GT(meta->get("pid")->as_u64(), 0u);
    const json::Value* counters = meta->get("registry")->get("counters");
    ASSERT_NE(counters, nullptr);
    ASSERT_TRUE(counters->is_array());
    // The socket run must have counted at least one digest-report send.
    std::uint64_t digest_sends = 0;
    for (const auto& c : counters->array) {
      if (c->get("name")->as_string() == "net.send.shard_digest") {
        digest_sends = c->get("value")->as_u64();
      }
    }
    EXPECT_GT(digest_sends, 0u);

    const json::Value* events = doc->get("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->is_array());
    ASSERT_GT(events->array.size(), 1u);
    EXPECT_EQ(events->array[0]->get("ph")->as_string(), "M");
    std::size_t shard_steps = 0;
    for (const auto& e : events->array) {
      const std::string& ph = e->get("ph")->as_string();
      ASSERT_TRUE(ph == "M" || ph == "X" || ph == "i");
      if (ph == "M") continue;
      EXPECT_GE(e->get("ts")->as_number(), 0.0);
      if (ph == "X") {
        EXPECT_GE(e->get("dur")->as_number(), 0.0);
      }
      if (e->get("name")->as_string() == "shard.step") ++shard_steps;
    }
    // Each process hosted one shard for `steps` steps, and each step span
    // carries its (shard, step) correlation key.
    EXPECT_EQ(shard_steps, spec.steps);
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------- determinism

/// The whole point of the telemetry layer's determinism contract: the run
/// digest is bit-identical with telemetry on, off, or compiled out. The
/// pinned constant is shared by the NOW_OBS=ON and NOW_OBS=OFF builds of
/// this test, so a telemetry hook that perturbs protocol state fails the
/// build matrix, not just an equality check within one configuration.
TEST(ObsDeterminismTest, RunDigestIdenticalWithTelemetryOnOffCompiledOut) {
  sim::ShardSpec spec;
  spec.num_shards = 3;
  spec.steps = 6;
  spec.batch_ops = 2;
  spec.n0 = 30;
  spec.seed = 41;

  set_enabled(false);
  const sim::ShardRunResult off = sim::run_single_process(spec);

  sim::ShardRunResult on;
  {
    ObsEnabledScope obs;
    on = sim::run_single_process(spec);
    if (kCompiledIn) {
      // Prove telemetry actually recorded something, so the digest
      // equality below is not vacuous.
      EXPECT_GT(Registry::instance().counter_value(
                    Registry::instance().counter("net.send.shard_digest")),
                0u);
    }
  }

  EXPECT_EQ(on.run_digest, off.run_digest);
  EXPECT_EQ(on.step_digests, off.step_digests);
  EXPECT_EQ(on.engine_rounds, off.engine_rounds);

  // Pinned across build configurations (see the comment above).
  EXPECT_EQ(off.run_digest, 0x71f19f5bc1f50134ull);
}

}  // namespace
}  // namespace now::obs
