// Property tests on the parameter derivations — in particular the paper's
// structural requirement l > sqrt(2): a freshly split half must land
// strictly above the merge threshold (else one operation could immediately
// re-trigger the opposite one and restructuring would never settle).
#include <tuple>

#include <gtest/gtest.h>

#include "core/params.hpp"

namespace now::core {
namespace {

class ParamsPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int, double>> {
};

TEST_P(ParamsPropertyTest, ThresholdOrderingHolds) {
  const auto [N, k, l] = GetParam();
  NowParams p;
  p.max_size = N;
  p.k = k;
  p.l = l;
  EXPECT_LT(p.merge_threshold(), p.cluster_size_target());
  EXPECT_LT(p.cluster_size_target(), p.split_threshold() + 1);
  EXPECT_GE(p.cluster_size_bound(), p.split_threshold());
}

TEST_P(ParamsPropertyTest, SplitHalvesStayAboveMergeLine) {
  // l > sqrt(2)  <=>  (l k lnN)/2 > k lnN / l: half of a just-split cluster
  // is still above the merge threshold.
  const auto [N, k, l] = GetParam();
  NowParams p;
  p.max_size = N;
  p.k = k;
  p.l = l;
  const std::size_t just_split_half = (p.split_threshold() + 1) / 2;
  if (l > 1.45) {  // comfortably above sqrt(2)
    EXPECT_GE(just_split_half, p.merge_threshold())
        << "N=" << N << " k=" << k << " l=" << l;
  }
}

TEST_P(ParamsPropertyTest, MergedPairStaysBelowSplitLine) {
  // Dually, two merge-threshold clusters absorbed into one stay below the
  // split threshold when l > sqrt(2).
  const auto [N, k, l] = GetParam();
  NowParams p;
  p.max_size = N;
  p.k = k;
  p.l = l;
  if (l > 1.45) {
    EXPECT_LE(2 * (p.merge_threshold() - 1), p.split_threshold())
        << "N=" << N << " k=" << k << " l=" << l;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParamsPropertyTest,
    ::testing::Combine(::testing::Values(1ULL << 10, 1ULL << 14, 1ULL << 18,
                                         1ULL << 22),
                       ::testing::Values(2, 3, 5, 8, 16),
                       ::testing::Values(1.5, 1.7, 2.0, 3.0)));

TEST(ParamsTest, DynamicBaseIsMonotoneInN) {
  NowParams p;
  p.max_size = 1 << 16;
  p.threshold_mode = ThresholdMode::kDynamicCurrentN;
  std::size_t prev = 0;
  for (const std::size_t n : {256u, 1024u, 4096u, 16384u, 65536u}) {
    const std::size_t target = p.cluster_size_target(n);
    EXPECT_GE(target, prev);
    prev = target;
  }
  // Dynamic thresholds never exceed the static (N-keyed) ones.
  EXPECT_LE(p.cluster_size_target(256), [&] {
    NowParams q = p;
    q.threshold_mode = ThresholdMode::kStaticN;
    return q.cluster_size_target(256);
  }());
}

TEST(ParamsTest, WalkBoundIsKeyedToNEvenInDynamicMode) {
  NowParams p;
  p.max_size = 1 << 16;
  p.threshold_mode = ThresholdMode::kDynamicCurrentN;
  // The acceptance denominator must bound sizes across the WHOLE run.
  EXPECT_GE(p.cluster_size_bound(), p.split_threshold(1 << 16));
  EXPECT_GE(p.cluster_size_bound(), p.split_threshold(256));
}

}  // namespace
}  // namespace now::core
