#include "core/rand_cl.hpp"

#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "core/now.hpp"

namespace now::core {
namespace {

NowParams test_params(WalkMode mode) {
  NowParams p;
  p.max_size = 1 << 12;
  p.tau = 0.15;
  p.walk_mode = mode;
  return p;
}

class RandClLawTest : public ::testing::TestWithParam<WalkMode> {};

TEST_P(RandClLawTest, EndpointLawIsSizeBiased) {
  // The paper's requirement: randCl returns cluster C with probability
  // |C| / n (footnote ‡ / Section 3.1).
  Metrics metrics;
  NowSystem system{test_params(GetParam()), metrics, 12345};
  system.initialize(600, 90);
  ASSERT_GE(system.num_clusters(), 10u);

  const ClusterId start = system.state().cluster_ids().front();
  constexpr int kTrials = 4000;
  std::map<ClusterId, std::uint64_t> counts;
  for (int i = 0; i < kTrials; ++i) {
    const auto result = system.rand_cl_from(start);
    ASSERT_TRUE(result.cluster.valid());
    counts[result.cluster]++;
  }

  std::vector<std::uint64_t> observed;
  std::vector<double> probs;
  const double n = static_cast<double>(system.num_nodes());
  for (const ClusterId id : system.state().cluster_ids()) {
    const auto& c = system.state().cluster_at(id);
    observed.push_back(counts[id]);
    probs.push_back(static_cast<double>(c.size()) / n);
  }
  const double stat = chi_square_statistic(observed, probs);
  const double p = chi_square_p_value(stat, observed.size() - 1);
  EXPECT_GT(p, 1e-4) << "walk endpoints deviate from the |C|/n law";
}

INSTANTIATE_TEST_SUITE_P(Modes, RandClLawTest,
                         ::testing::Values(WalkMode::kSimulate,
                                           WalkMode::kSampleExact));

TEST(RandClTest, SimulatedWalkChargesMessagesAndReportsRounds) {
  Metrics metrics;
  NowSystem system{test_params(WalkMode::kSimulate), metrics, 7};
  system.initialize(600, 0);
  const ClusterId start = system.state().cluster_ids().front();
  const auto before = metrics.total().messages;
  const auto result = system.rand_cl_from(start);
  EXPECT_GT(metrics.total().messages, before);
  EXPECT_GT(result.cost.rounds, 0u);
}

TEST(RandClTest, RestartsAreRare) {
  // Acceptance probability is ~ |C| / (l k ln N + 1) >= 1/l^2: a couple of
  // restarts at most in expectation.
  Metrics metrics;
  NowSystem system{test_params(WalkMode::kSimulate), metrics, 8};
  system.initialize(600, 0);
  const ClusterId start = system.state().cluster_ids().front();
  RunningStat restarts;
  for (int i = 0; i < 500; ++i) {
    restarts.add(static_cast<double>(system.rand_cl_from(start).restarts));
  }
  EXPECT_LT(restarts.mean(), 3.0);
}

TEST(RandClTest, WalkLengthTracksLog2OfClusters) {
  Metrics metrics;
  NowSystem system{test_params(WalkMode::kSimulate), metrics, 9};
  system.initialize(600, 0);
  const double m = static_cast<double>(system.num_clusters());
  const ClusterId start = system.state().cluster_ids().front();
  RunningStat hops;
  for (int i = 0; i < 500; ++i) {
    hops.add(static_cast<double>(system.rand_cl_from(start).hops));
  }
  const double expected = std::log(m) * std::log(m);
  EXPECT_GT(hops.mean(), expected * 0.3);
  EXPECT_LT(hops.mean(), expected * 4.0);
}

TEST(RandClTest, SampleExactChargesModeledCost) {
  Metrics metrics;
  NowSystem system{test_params(WalkMode::kSampleExact), metrics, 10};
  system.initialize(600, 0);
  const ClusterId start = system.state().cluster_ids().front();
  const auto before = metrics.total().messages;
  const auto result = system.rand_cl_from(start);
  EXPECT_EQ(metrics.total().messages - before, result.cost.messages);
  EXPECT_GT(result.cost.messages, 0u);
  EXPECT_GT(result.cost.rounds, 0u);
}

TEST(RandClTest, SingleClusterSystemAlwaysReturnsIt) {
  NowParams p = test_params(WalkMode::kSimulate);
  Metrics metrics;
  NowSystem system{p, metrics, 11};
  system.initialize(p.cluster_size_target(), 0);  // exactly one cluster
  ASSERT_EQ(system.num_clusters(), 1u);
  const ClusterId only = system.state().cluster_ids().front();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(system.rand_cl_from(only).cluster, only);
  }
}

}  // namespace
}  // namespace now::core
