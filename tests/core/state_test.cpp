// Tests for the flat NowState storage: slot reuse, membership bookkeeping,
// and — most importantly — that the Fenwick-backed size-biased cluster draw
// realizes exactly the |C| / n law the old linear-scan implementation did.
#include "core/state.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "core/now.hpp"

namespace now::core {
namespace {

over::OverParams small_over() {
  over::OverParams p;
  p.max_size = 1 << 12;
  return p;
}

/// The pre-refactor implementation, kept verbatim as the reference law:
/// draw target uniform in [0, n), scan clusters in ascending id order.
ClusterId size_biased_linear_scan(const NowState& state, Rng& rng) {
  std::vector<ClusterId> ids(state.cluster_ids().begin(),
                             state.cluster_ids().end());
  std::sort(ids.begin(), ids.end());
  std::uint64_t target = rng.uniform(state.num_nodes());
  for (const ClusterId id : ids) {
    const auto size =
        static_cast<std::uint64_t>(state.cluster_at(id).size());
    if (target < size) return id;
    target -= size;
  }
  ADD_FAILURE() << "cluster sizes inconsistent with node count";
  return ids.front();
}

/// A small partition with uneven cluster sizes and at least one reused slot
/// (cluster destroyed, then a new one created).
NowState make_uneven_state() {
  NowState state{small_over()};
  const std::vector<std::size_t> sizes = {3, 17, 42, 8, 30};
  for (const std::size_t size : sizes) {
    const ClusterId c = state.create_cluster();
    for (std::size_t i = 0; i < size; ++i) {
      const NodeId node = state.fresh_node_id();
      state.register_node(node);
      state.add_member(c, node);
    }
  }
  // Destroy the third cluster and replace it, exercising the free list.
  const ClusterId doomed = state.cluster_ids()[2];
  const auto moving_view = state.cluster_at(doomed).members();
  const std::vector<NodeId> moving(moving_view.begin(), moving_view.end());
  const ClusterId refuge = state.cluster_ids()[0];
  for (const NodeId m : moving) state.move_node(m, doomed, refuge);
  state.destroy_cluster(doomed);
  const ClusterId fresh = state.create_cluster();
  for (std::size_t i = 0; i < 12; ++i) {
    const NodeId node = state.fresh_node_id();
    state.register_node(node);
    state.add_member(fresh, node);
  }
  return state;
}

TEST(StateSamplingTest, SizeBiasedMatchesLinearScanReferenceOnFixedSeed) {
  const NowState state = make_uneven_state();
  const std::size_t n = state.num_nodes();
  ASSERT_GT(n, 0u);

  constexpr int kDraws = 200000;
  std::map<ClusterId, double> fenwick_freq;
  std::map<ClusterId, double> reference_freq;
  {
    Rng rng{12345};
    for (int i = 0; i < kDraws; ++i) {
      fenwick_freq[state.random_cluster_size_biased(rng)] += 1.0 / kDraws;
    }
  }
  {
    Rng rng{12345};  // same seed: both consume one uniform draw per sample
    for (int i = 0; i < kDraws; ++i) {
      reference_freq[size_biased_linear_scan(state, rng)] += 1.0 / kDraws;
    }
  }

  for (const ClusterId id : state.cluster_ids()) {
    const double expected =
        static_cast<double>(state.cluster_at(id).size()) /
        static_cast<double>(n);
    // Both samplers must realize the |C| / n law...
    EXPECT_NEAR(fenwick_freq[id], expected, 0.005) << "cluster " << id;
    EXPECT_NEAR(reference_freq[id], expected, 0.005) << "cluster " << id;
    // ... and agree with each other within sampling noise.
    EXPECT_NEAR(fenwick_freq[id], reference_freq[id], 0.007)
        << "cluster " << id;
  }
}

TEST(StateSamplingTest, UniformClusterDrawCoversAllClustersEvenly) {
  const NowState state = make_uneven_state();
  constexpr int kDraws = 60000;
  Rng rng{77};
  std::map<ClusterId, int> counts;
  for (int i = 0; i < kDraws; ++i) {
    counts[state.random_cluster_uniform(rng)] += 1;
  }
  const double expected =
      static_cast<double>(kDraws) /
      static_cast<double>(state.num_clusters());
  for (const ClusterId id : state.cluster_ids()) {
    EXPECT_NEAR(counts[id], expected, 0.1 * expected) << "cluster " << id;
  }
}

TEST(StateTest, SlotReuseKeepsIdsDistinctAndSizesConsistent) {
  NowState state{small_over()};
  const ClusterId a = state.create_cluster();
  const ClusterId b = state.create_cluster();
  ASSERT_NE(a, b);

  const NodeId n1 = state.fresh_node_id();
  state.register_node(n1);
  state.add_member(a, n1);
  EXPECT_EQ(state.home_of(n1), a);
  EXPECT_EQ(state.num_nodes(), 1u);

  state.move_node(n1, a, b);
  EXPECT_EQ(state.home_of(n1), b);
  EXPECT_EQ(state.cluster_at(a).size(), 0u);
  EXPECT_EQ(state.cluster_at(b).size(), 1u);

  state.destroy_cluster(a);
  EXPECT_FALSE(state.has_cluster(a));
  EXPECT_TRUE(state.has_cluster(b));
  EXPECT_EQ(state.num_clusters(), 1u);

  // The freed slot is reused, but the id is fresh — never recycled.
  const ClusterId c = state.create_cluster();
  EXPECT_NE(c, a);
  EXPECT_NE(c, b);
  EXPECT_TRUE(state.has_cluster(c));
  EXPECT_EQ(state.num_clusters(), 2u);

  // Size-biased sampling only ever returns live populated clusters.
  Rng rng{5};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(state.random_cluster_size_biased(rng), b);
  }
}

TEST(StateTest, StaleClusterIdThrowsLikeTheOldOrderedMap) {
  NowState state{small_over()};
  const ClusterId c = state.create_cluster();
  state.destroy_cluster(c);
  // The pre-refactor std::map::at contract: stale ids raise, in release
  // builds too, instead of reading out of bounds.
  EXPECT_THROW((void)state.cluster_at(c), std::out_of_range);
  EXPECT_THROW(state.add_member(c, NodeId{0}), std::out_of_range);
}

TEST(StateTest, RemoveMemberClearsPlacement) {
  NowState state{small_over()};
  const ClusterId c = state.create_cluster();
  const NodeId node = state.fresh_node_id();
  state.register_node(node);
  state.add_member(c, node);
  EXPECT_TRUE(state.is_placed(node));

  state.remove_member(c, node);
  EXPECT_FALSE(state.is_placed(node));
  EXPECT_EQ(state.home_of(node), ClusterId::invalid());
  EXPECT_EQ(state.num_nodes(), 0u);
  // Still registered as live until unregister_node (merge-dissolve window).
  EXPECT_EQ(state.live_nodes().size(), 1u);
  state.unregister_node(node);
  EXPECT_TRUE(state.live_nodes().empty());
}

TEST(StateTest, ManyClustersGrowTheFenwickMirror) {
  NowState state{small_over()};
  // Push well past the initial Fenwick capacity to exercise regrowth.
  std::vector<ClusterId> ids;
  for (int i = 0; i < 100; ++i) {
    const ClusterId c = state.create_cluster();
    ids.push_back(c);
    const std::size_t size = 1 + static_cast<std::size_t>(i % 7);
    for (std::size_t j = 0; j < size; ++j) {
      const NodeId node = state.fresh_node_id();
      state.register_node(node);
      state.add_member(c, node);
    }
  }
  Rng rng{9};
  std::map<ClusterId, int> seen;
  for (int i = 0; i < 20000; ++i) {
    seen[state.random_cluster_size_biased(rng)] += 1;
  }
  // Every cluster is reachable; a 7-member cluster is drawn ~7x as often
  // as a 1-member one.
  for (const ClusterId id : ids) EXPECT_GT(seen[id], 0) << id;
}

}  // namespace
}  // namespace now::core
