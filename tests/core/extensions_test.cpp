// Tests for the paper's extension remarks implemented in the library:
// Remark 1 (authenticated regime, tau < 1/2), Remark 2 (generalized 1/r
// ceiling), Algorithms 1-2's log n thresholds (ThresholdMode), and the
// footnote-* parallel batch operations.
#include <gtest/gtest.h>

#include "core/now.hpp"

namespace now::core {
namespace {

NowParams base_params() {
  NowParams p;
  p.max_size = 1 << 12;
  p.walk_mode = WalkMode::kSampleExact;
  return p;
}

TEST(RobustnessTest, CompromiseThresholdFollowsRegime) {
  NowParams p = base_params();
  EXPECT_DOUBLE_EQ(p.compromise_threshold(), 1.0 / 3.0);
  p.robustness = Robustness::kAuthenticated;
  EXPECT_DOUBLE_EQ(p.compromise_threshold(), 1.0 / 2.0);
}

TEST(RobustnessTest, AuthenticatedModeToleratesTauAboveOneThird) {
  // Remark 1: with signatures the system survives tau up to 1/2 - eps.
  // 35% Byzantine overall — impossible in the plain model — with k scaled
  // to the 0.15 slack (Lemma 1's "k large enough" applies to the new
  // threshold too).
  NowParams p = base_params();
  p.robustness = Robustness::kAuthenticated;
  p.k = 20;
  p.tau = 0.35;
  Metrics metrics;
  NowSystem system{p, metrics, 1};
  system.initialize(1100, 385, InitTopology::kModeledSparse);
  Rng rng{2};
  for (int step = 0; step < 60; ++step) {
    if (rng.bernoulli(0.5)) {
      system.join(rng.bernoulli(0.35));
    } else {
      system.leave(system.state().random_node(rng));
    }
    const auto inv = system.check();
    ASSERT_TRUE(inv.ok) << "step " << step << ": "
                        << (inv.violations.empty() ? "" : inv.violations[0]);
    ASSERT_LT(inv.worst_byz_fraction, 0.5);
  }
}

TEST(RobustnessTest, PlainModeFlagsWhatAuthenticatedModeAccepts) {
  // The same 35%-Byzantine deployment is (correctly) reported broken under
  // the plain 1/3 rule.
  NowParams p = base_params();
  p.k = 20;
  p.tau = 0.35;
  Metrics metrics;
  NowSystem system{p, metrics, 3};
  system.initialize(1100, 385, InitTopology::kModeledSparse);
  const auto plain = system.check();
  EXPECT_GT(plain.compromised_clusters, 0u);

  NowParams q = p;
  q.robustness = Robustness::kAuthenticated;
  const auto authenticated =
      check_invariants(system.state(), q, /*check_sizes=*/true);
  EXPECT_EQ(authenticated.compromised_clusters, 0u);
}

TEST(ThresholdModeTest, DynamicThresholdsTrackCurrentSize) {
  NowParams p = base_params();
  p.threshold_mode = ThresholdMode::kDynamicCurrentN;
  // At n = sqrt(N), ln n = ln N / 2: clusters are about half as large.
  EXPECT_LT(p.cluster_size_target(64), p.cluster_size_target(4096));
  EXPECT_LT(p.split_threshold(64), p.split_threshold(4096));
  // Static mode ignores the argument.
  NowParams q = base_params();
  EXPECT_EQ(q.cluster_size_target(64), q.cluster_size_target(4096));
}

TEST(ThresholdModeTest, DynamicModeMaintainsInvariantsUnderGrowth) {
  NowParams p = base_params();
  p.threshold_mode = ThresholdMode::kDynamicCurrentN;
  p.k = 5;
  p.tau = 0.10;
  Metrics metrics;
  NowSystem system{p, metrics, 4};
  system.initialize(256, 25, InitTopology::kModeledSparse);
  Rng rng{5};
  std::size_t splits = 0;
  for (int step = 0; step < 300; ++step) {
    const auto [node, report] = system.join(rng.bernoulli(0.10));
    splits += report.splits;
    if (step % 25 == 0) {
      const auto inv = system.check();
      ASSERT_TRUE(inv.ok) << "step " << step << ": "
                          << (inv.violations.empty() ? ""
                                                     : inv.violations[0]);
    }
  }
  EXPECT_GT(splits, 0u);
}

TEST(BatchTest, ParallelStepConservesNodes) {
  NowParams p = base_params();
  Metrics metrics;
  NowSystem system{p, metrics, 6};
  system.initialize(400, 60, InitTopology::kModeledSparse);
  Rng rng{7};
  std::vector<NodeId> leaves;
  for (int i = 0; i < 5; ++i) {
    NodeId victim = system.state().random_node(rng);
    while (std::find(leaves.begin(), leaves.end(), victim) != leaves.end()) {
      victim = system.state().random_node(rng);
    }
    leaves.push_back(victim);
  }
  const auto [joined, report] = system.step_parallel(8, leaves);
  EXPECT_EQ(joined.size(), 8u);
  EXPECT_EQ(system.num_nodes(), 400u + 8 - 5);
  EXPECT_TRUE(system.check().ok);
}

TEST(BatchTest, BatchRoundsAreMaxNotSum) {
  NowParams p = base_params();
  Metrics metrics;
  NowSystem system{p, metrics, 8};
  system.initialize(400, 0, InitTopology::kModeledSparse);
  const auto [joined, report] = system.step_parallel(6, {});
  ASSERT_EQ(joined.size(), 6u);
  // Individual join rounds are recorded under the "join" label; the batch
  // round count must be <= any sum of two of them but >= the max.
  const auto joins = metrics.operation_samples(metrics.find("join"));
  ASSERT_GE(joins.size(), 6u);
  std::uint64_t max_rounds = 0;
  std::uint64_t sum_rounds = 0;
  for (auto it = joins.end() - 6; it != joins.end(); ++it) {
    max_rounds = std::max(max_rounds, it->rounds);
    sum_rounds += it->rounds;
  }
  EXPECT_EQ(report.cost.rounds, max_rounds);
  EXPECT_LT(report.cost.rounds, sum_rounds);
  // Messages DO add up.
  EXPECT_GT(report.cost.messages, 0u);
}

TEST(BatchTest, MixedBatchRoundsAreMaxOverJoinsAndLeaves) {
  NowParams p = base_params();
  Metrics metrics;
  NowSystem system{p, metrics, 21};
  system.initialize(400, 0, InitTopology::kModeledSparse);
  Rng rng{3};
  std::vector<NodeId> leaves;
  for (int i = 0; i < 4; ++i) {
    NodeId victim = system.state().random_node(rng);
    while (std::find(leaves.begin(), leaves.end(), victim) != leaves.end()) {
      victim = system.state().random_node(rng);
    }
    leaves.push_back(victim);
  }
  const auto [joined, report] = system.step_parallel(5, leaves);
  ASSERT_EQ(joined.size(), 5u);

  // The batch overlaps all member operations in time: its round count is
  // the max over every constituent join AND leave, never their sum.
  const auto joins = metrics.operation_samples(metrics.find("join"));
  const auto leave_samples = metrics.operation_samples(metrics.find("leave"));
  ASSERT_GE(joins.size(), 5u);
  ASSERT_GE(leave_samples.size(), 4u);
  std::uint64_t max_rounds = 0;
  std::uint64_t sum_rounds = 0;
  for (auto it = joins.end() - 5; it != joins.end(); ++it) {
    max_rounds = std::max(max_rounds, it->rounds);
    sum_rounds += it->rounds;
  }
  for (auto it = leave_samples.end() - 4; it != leave_samples.end(); ++it) {
    max_rounds = std::max(max_rounds, it->rounds);
    sum_rounds += it->rounds;
  }
  EXPECT_EQ(report.cost.rounds, max_rounds);
  EXPECT_LT(report.cost.rounds, sum_rounds);
  // Messages of all member operations add up into the batch scope.
  std::uint64_t member_messages = 0;
  for (auto it = joins.end() - 5; it != joins.end(); ++it) {
    member_messages += it->messages;
  }
  for (auto it = leave_samples.end() - 4; it != leave_samples.end(); ++it) {
    member_messages += it->messages;
  }
  EXPECT_EQ(report.cost.messages, member_messages);
}

TEST(BatchTest, EmptyBatchIsANoop) {
  NowParams p = base_params();
  Metrics metrics;
  NowSystem system{p, metrics, 9};
  system.initialize(300, 0, InitTopology::kModeledSparse);
  const auto [joined, report] = system.step_parallel(0, {});
  EXPECT_TRUE(joined.empty());
  EXPECT_EQ(report.cost.rounds, 0u);
  EXPECT_EQ(system.num_nodes(), 300u);
}

TEST(RemarkTwoTest, GeneralizedOneOverRCeiling) {
  // Remark 2: with tau <= 1/r - eps the adversary controls at most a 1/r
  // fraction of every cluster (whp). Check r = 4 and r = 5. The whp bound
  // needs the security parameter to be large enough for the Chernoff tail
  // at this eps: at k = 10 the worst-cluster peak concentrates around
  // tau + 3 sigma ~ 0.30..0.33 for r = 4, grazing the ceiling on many
  // seeds, so the deterministic test uses k = 16.
  for (const auto& [r, tau, k] : {std::tuple{4, 0.17, 16},
                                  std::tuple{5, 0.13, 16}}) {
    // Single trajectories at this small n can transiently graze ~1/r + 0.064,
    // so the per-seed bound carries extra slack — but the mean peak over
    // several seeds is stable and must satisfy the tight bound, keeping the
    // test sensitive to genuine degradations of the ceiling.
    double peak_sum = 0.0;
    constexpr int kSeeds = 3;
    for (int seed = 0; seed < kSeeds; ++seed) {
      NowParams p = base_params();
      p.k = k;
      p.tau = tau;
      Metrics metrics;
      NowSystem system{p, metrics,
                       static_cast<std::uint64_t>(r + 100 * seed)};
      system.initialize(1200, static_cast<std::size_t>(tau * 1200),
                        InitTopology::kModeledSparse);
      Rng rng{static_cast<std::uint64_t>(r + 100 * seed) * 31};
      double peak = 0.0;
      for (int step = 0; step < 150; ++step) {
        if (rng.bernoulli(0.5)) {
          system.join(rng.bernoulli(tau));
        } else {
          system.leave(system.state().random_node(rng));
        }
        peak = std::max(peak, system.check().worst_byz_fraction);
      }
      EXPECT_LT(peak, 1.0 / r + 0.075) << "r=" << r << " seed=" << seed;
      peak_sum += peak;
    }
    EXPECT_LT(peak_sum / kSeeds, 1.0 / r + 0.06) << "r=" << r;
  }
}

}  // namespace
}  // namespace now::core
