// Tests for the persistent, incrementally maintained PlanCache
// (core/plan_cache.hpp): exact |C|/n sampling through the dirty-overlay
// alias sampler, incremental neighborhood maintenance, and the rebuild
// thresholds.
#include "core/plan_cache.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "core/state.hpp"

namespace now::core {
namespace {

/// A standalone partition: `sizes[i]` members in cluster i, overlay wired.
struct Fixture {
  over::OverParams over_params;
  NowState state;
  std::vector<ClusterId> ids;
  NodeId::value_type next_node = 0;

  explicit Fixture(const std::vector<std::size_t>& sizes)
      : state(over_params) {
    Rng rng{7};
    for (const std::size_t size : sizes) {
      ids.push_back(state.create_cluster());
      grow(ids.back(), size);
    }
    state.overlay.initialize(ids, rng);
  }

  void grow(ClusterId c, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      const NodeId node{next_node++};
      state.register_node(node);
      state.add_member(c, node);
    }
  }

  void shrink(ClusterId c, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      const NodeId node = state.cluster_at(c).members().back();
      state.remove_member(c, node);
      state.unregister_node(node);
    }
  }
};

NowParams cache_params() {
  NowParams p;
  p.walk_mode = WalkMode::kSampleExact;
  return p;
}

/// Draws `draws` samples and checks each cluster's frequency against its
/// exact probability |C| / n within a 5-sigma binomial envelope.
void expect_size_biased_law(const PlanCache& cache, std::uint64_t seed,
                            std::size_t draws) {
  Rng rng{seed};
  std::vector<std::size_t> hits(cache.id_by_index.size(), 0);
  for (std::size_t i = 0; i < draws; ++i) ++hits[cache.draw_biased(rng)];
  const double n = static_cast<double>(cache.total_weight);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    const double p = static_cast<double>(cache.current_weight[i]) / n;
    const double expected = p * static_cast<double>(draws);
    const double sigma =
        std::sqrt(static_cast<double>(draws) * p * (1.0 - p));
    EXPECT_NEAR(static_cast<double>(hits[i]), expected, 5.0 * sigma + 1.0)
        << "cluster index " << i << " weight " << cache.current_weight[i];
  }
}

TEST(PlanCacheTest, FreshBuildIsConsistentAndSamplesExactly) {
  Fixture fx{{40, 10, 25, 60, 5, 33, 27}};
  PlanCache cache;
  cache.build(fx.state, cache_params());
  EXPECT_TRUE(cache.consistent_with(fx.state));
  EXPECT_EQ(cache.total_weight, fx.state.num_nodes());
  EXPECT_TRUE(cache.dirty_list.empty());
  expect_size_biased_law(cache, 11, 200000);
}

TEST(PlanCacheTest, IncrementalDeltasKeepCacheExact) {
  Fixture fx{{30, 30, 30, 30, 30, 30}};
  PlanCache cache;
  cache.build(fx.state, cache_params());

  // Grow cluster 0 by 12, shrink cluster 3 by 9 — apply the same deltas
  // the commit would hand the cache, then verify against a fresh rebuild
  // via the exhaustive consistency check (sizes, neighborhoods, tables).
  fx.grow(fx.ids[0], 12);
  cache.apply_size_delta(fx.state, fx.state.slot_index(fx.ids[0]), 12);
  fx.shrink(fx.ids[3], 9);
  cache.apply_size_delta(fx.state, fx.state.slot_index(fx.ids[3]), -9);
  EXPECT_TRUE(cache.consistent_with(fx.state));
  EXPECT_EQ(cache.total_weight, fx.state.num_nodes());

  // The dirty overlay is active (two entries, below the rebuild
  // thresholds) and the sampler must realize the *current* law exactly.
  EXPECT_EQ(cache.dirty_list.size(), 2u);
  expect_size_biased_law(cache, 13, 200000);
}

TEST(PlanCacheTest, DirtyOverlayRebuildThresholdFires) {
  // 40 clusters: dirtying more than 40/16 = 2 entries triggers the length
  // threshold on the next maybe_rebuild_alias, clearing the overlay.
  std::vector<std::size_t> sizes(40, 20);
  Fixture fx{sizes};
  PlanCache cache;
  cache.build(fx.state, cache_params());
  for (int i = 0; i < 4; ++i) {
    fx.grow(fx.ids[static_cast<std::size_t>(i)], 1);
    cache.apply_size_delta(
        fx.state, fx.state.slot_index(fx.ids[static_cast<std::size_t>(i)]),
        1);
  }
  EXPECT_EQ(cache.dirty_list.size(), 4u);
  cache.maybe_rebuild_alias();
  EXPECT_TRUE(cache.dirty_list.empty());
  EXPECT_EQ(cache.table_total, cache.total_weight);
  EXPECT_TRUE(cache.consistent_with(fx.state));
  expect_size_biased_law(cache, 17, 100000);
}

TEST(PlanCacheTest, NeighborhoodsTrackNeighborSizeChanges) {
  Fixture fx{{20, 20, 20, 20}};
  PlanCache cache;
  cache.build(fx.state, cache_params());
  // Every neighbor of cluster 1 must see its neighborhood population grow
  // by exactly the delta; non-neighbors must not.
  const ClusterId changed = fx.ids[1];
  std::vector<std::uint64_t> before;
  for (const ClusterId c : fx.ids) {
    before.push_back(cache.neighborhood(fx.state, c));
  }
  fx.grow(changed, 7);
  cache.apply_size_delta(fx.state, fx.state.slot_index(changed), 7);
  for (std::size_t i = 0; i < fx.ids.size(); ++i) {
    const bool neighbor = fx.state.overlay.graph().has_edge(
        changed.value(), fx.ids[i].value());
    EXPECT_EQ(cache.neighborhood(fx.state, fx.ids[i]),
              before[i] + (neighbor ? 7u : 0u))
        << "cluster " << i;
  }
  EXPECT_TRUE(cache.consistent_with(fx.state));
}

}  // namespace
}  // namespace now::core
