#include "core/now.hpp"

#include <map>
#include <set>

#include <gtest/gtest.h>

namespace now::core {
namespace {

NowParams small_params() {
  NowParams p;
  p.max_size = 1 << 12;
  p.tau = 0.15;
  p.walk_mode = WalkMode::kSimulate;
  return p;
}

TEST(NowInitTest, InitializationEstablishesInvariants) {
  Metrics metrics;
  NowSystem system{small_params(), metrics, 1};
  const auto report = system.initialize(400, 60);
  EXPECT_TRUE(report.discovery_complete);
  EXPECT_EQ(system.num_nodes(), 400u);
  EXPECT_EQ(report.num_clusters, system.num_clusters());
  const auto inv = system.check();
  EXPECT_TRUE(inv.ok) << (inv.violations.empty() ? "" : inv.violations[0]);
  EXPECT_EQ(inv.num_nodes, 400u);
  EXPECT_EQ(system.state().byzantine_total(), 60u);
}

TEST(NowInitTest, InitCostsAreCharged) {
  Metrics metrics;
  NowSystem system{small_params(), metrics, 2};
  const auto report = system.initialize(300, 40);
  EXPECT_GT(report.discovery.messages, 0u);
  EXPECT_GT(report.quorum.messages, 0u);
  EXPECT_GT(report.partition.messages, 0u);
  EXPECT_EQ(report.total.messages, metrics.total().messages);
  EXPECT_GE(report.total.messages, report.discovery.messages +
                                       report.quorum.messages +
                                       report.partition.messages);
}

TEST(NowInitTest, CompleteTopologyCostsMoreThanSparse) {
  Metrics sparse;
  Metrics dense;
  NowSystem s1{small_params(), sparse, 3};
  NowSystem s2{small_params(), dense, 3};
  const auto r1 = s1.initialize(200, 30, InitTopology::kSparseRandom);
  const auto r2 = s2.initialize(200, 30, InitTopology::kComplete);
  EXPECT_GT(r2.discovery.messages, r1.discovery.messages);
}

TEST(NowJoinTest, JoinAddsExactlyOneNode) {
  Metrics metrics;
  NowSystem system{small_params(), metrics, 4};
  system.initialize(400, 60);
  const std::size_t before = system.num_nodes();
  const auto [node, report] = system.join(false);
  EXPECT_EQ(system.num_nodes(), before + 1);
  EXPECT_TRUE(system.state().is_placed(node));
  EXPECT_GT(report.cost.messages, 0u);
  EXPECT_GT(report.cost.rounds, 0u);
  const auto inv = system.check();
  EXPECT_TRUE(inv.ok) << (inv.violations.empty() ? "" : inv.violations[0]);
}

TEST(NowJoinTest, ByzantineJoinIsTracked) {
  Metrics metrics;
  NowSystem system{small_params(), metrics, 5};
  system.initialize(400, 60);
  const std::size_t byz_before = system.state().byzantine_total();
  const auto [node, report] = system.join(true);
  EXPECT_EQ(system.state().byzantine_total(), byz_before + 1);
  EXPECT_TRUE(system.state().byzantine.contains(node));
}

TEST(NowLeaveTest, LeaveRemovesExactlyOneNode) {
  Metrics metrics;
  NowSystem system{small_params(), metrics, 6};
  system.initialize(400, 60);
  const NodeId victim = system.state().random_node(system.rng());
  const std::size_t before = system.num_nodes();
  const auto report = system.leave(victim);
  EXPECT_EQ(system.num_nodes(), before - 1);
  EXPECT_FALSE(system.state().is_placed(victim));
  EXPECT_GT(report.cost.messages, 0u);
  const auto inv = system.check();
  EXPECT_TRUE(inv.ok) << (inv.violations.empty() ? "" : inv.violations[0]);
}

TEST(NowTest, JoinLeaveChurnKeepsInvariants) {
  // Lemma 1 holds "as long as the security parameter k is large enough":
  // at k = 3 a ~29-node cluster crossing 1/3 Byzantine is a percent-level
  // event, so the deterministic test uses k = 5 and tau = 0.10, where the
  // Chernoff tail is negligible. bench_thm3_longrun quantifies the k/tau
  // trade-off statistically.
  NowParams p = small_params();
  p.k = 5;
  p.tau = 0.10;
  Metrics metrics;
  NowSystem system{p, metrics, 7};
  system.initialize(500, 50);
  Rng rng{123};
  for (int step = 0; step < 60; ++step) {
    if (rng.bernoulli(0.5)) {
      system.join(rng.bernoulli(0.10));
    } else {
      system.leave(system.state().random_node(rng));
    }
    const auto inv = system.check();
    ASSERT_TRUE(inv.ok) << "step " << step << ": "
                        << (inv.violations.empty() ? "" : inv.violations[0]);
  }
}

TEST(NowTest, SmallKChurnStaysBelowOneHalf) {
  // At the small k = 3 the 1/3 line can be grazed transiently (see above),
  // but honest majorities — what the > 1/2 communication rule needs — must
  // persist.
  Metrics metrics;
  NowSystem system{small_params(), metrics, 7};
  system.initialize(400, 60);
  Rng rng{123};
  for (int step = 0; step < 60; ++step) {
    if (rng.bernoulli(0.5)) {
      system.join(rng.bernoulli(0.15));
    } else {
      system.leave(system.state().random_node(rng));
    }
    const auto inv = system.check();
    ASSERT_LT(inv.worst_byz_fraction, 0.5) << "step " << step;
  }
}

TEST(NowTest, SustainedGrowthTriggersSplits) {
  Metrics metrics;
  NowSystem system{small_params(), metrics, 8};
  system.initialize(400, 0);
  const std::size_t clusters_before = system.num_clusters();
  std::size_t splits = 0;
  for (int i = 0; i < 200; ++i) {
    const auto [node, report] = system.join(false);
    splits += report.splits;
  }
  EXPECT_GT(splits, 0u);
  EXPECT_GT(system.num_clusters(), clusters_before);
  EXPECT_TRUE(system.check().ok);
}

TEST(NowTest, SustainedShrinkageTriggersMerges) {
  Metrics metrics;
  NowSystem system{small_params(), metrics, 9};
  system.initialize(500, 0);
  Rng rng{321};
  std::size_t merges = 0;
  for (int i = 0; i < 250 && system.num_nodes() > 100; ++i) {
    const auto report = system.leave(system.state().random_node(rng));
    merges += report.merges;
  }
  EXPECT_GT(merges, 0u);
  EXPECT_TRUE(system.check().ok);
}

TEST(NowTest, AbsorbMergePolicyAlsoMaintainsInvariants) {
  NowParams p = small_params();
  p.merge_policy = MergePolicy::kAbsorb;
  p.k = 5;
  p.tau = 0.10;
  Metrics metrics;
  NowSystem system{p, metrics, 10};
  system.initialize(600, 60);
  Rng rng{11};
  for (int i = 0; i < 200 && system.num_nodes() > 150; ++i) {
    system.leave(system.state().random_node(rng));
    const auto inv = system.check();
    ASSERT_TRUE(inv.ok) << (inv.violations.empty() ? "" : inv.violations[0]);
  }
}

TEST(NowTest, NoShuffleModeSkipsExchanges) {
  NowParams p = small_params();
  p.shuffle_enabled = false;
  Metrics metrics;
  NowSystem system{p, metrics, 12};
  system.initialize(400, 0);
  system.join(false);
  EXPECT_EQ(metrics.operation_count(metrics.find("exchange")), 0u);
}

TEST(NowTest, ShuffleModeRunsExchanges) {
  Metrics metrics;
  NowSystem system{small_params(), metrics, 13};
  system.initialize(400, 0);
  system.join(false);
  EXPECT_GE(metrics.operation_count(metrics.find("exchange")), 1u);
}

TEST(NowTest, DeterministicGivenSeed) {
  const auto run = [](std::uint64_t seed) {
    Metrics metrics;
    NowSystem system{small_params(), metrics, seed};
    system.initialize(400, 60);
    Rng rng{99};
    for (int i = 0; i < 30; ++i) {
      if (rng.bernoulli(0.5)) {
        system.join(rng.bernoulli(0.2));
      } else {
        system.leave(system.state().random_node(rng));
      }
    }
    return std::tuple{metrics.total().messages, metrics.total().rounds,
                      system.num_nodes(), system.num_clusters()};
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(std::get<0>(run(42)), std::get<0>(run(43)));
}

TEST(NowTest, ExchangePreservesClusterSizes) {
  Metrics metrics;
  NowSystem system{small_params(), metrics, 14};
  system.initialize(400, 60);
  std::map<ClusterId, std::size_t> sizes_before;
  for (const ClusterId id : system.state().cluster_ids())
    sizes_before[id] = system.state().cluster_at(id).size();
  const ClusterId target = system.state().cluster_ids().front();
  system.exchange_all(target);
  for (const ClusterId id : system.state().cluster_ids()) {
    EXPECT_EQ(system.state().cluster_at(id).size(), sizes_before.at(id))
        << "cluster " << id;
  }
  EXPECT_EQ(system.num_nodes(), 400u);
}

TEST(NowTest, ExchangeReplacesMostMembers) {
  Metrics metrics;
  NowSystem system{small_params(), metrics, 15};
  system.initialize(400, 60);
  const ClusterId target = system.state().cluster_ids().front();
  // Deep copy: members() is a span over the slab, and the exchange below
  // mutates (and may relocate) the extent under it.
  const auto before_view = system.state().cluster_at(target).members();
  const std::vector<NodeId> before(before_view.begin(), before_view.end());
  system.exchange_all(target);
  const auto after = system.state().cluster_at(target).members();
  std::size_t stayed = 0;
  for (const NodeId m : after) {
    if (std::binary_search(before.begin(), before.end(), m)) ++stayed;
  }
  // Swapped-out members can flow back (their replacement draw may hit this
  // cluster again), but the overwhelming majority should be new.
  EXPECT_LT(stayed, before.size() / 2);
}

TEST(NowTest, NodeIdsAreNeverReused) {
  Metrics metrics;
  NowSystem system{small_params(), metrics, 16};
  system.initialize(300, 0);
  std::set<NodeId> seen;
  for (const NodeId id : system.state().live_nodes()) seen.insert(id);
  Rng rng{5};
  for (int i = 0; i < 40; ++i) {
    system.leave(system.state().random_node(rng));
    const auto [node, report] = system.join(false);
    EXPECT_TRUE(seen.insert(node).second) << "node id reused";
  }
}

}  // namespace
}  // namespace now::core
