#include "core/invariants.hpp"

#include <gtest/gtest.h>

#include "core/now.hpp"

namespace now::core {
namespace {

NowParams small_params() {
  NowParams p;
  p.max_size = 1 << 12;
  return p;
}

TEST(InvariantsTest, HealthySystemPasses) {
  Metrics metrics;
  NowSystem system{small_params(), metrics, 1};
  system.initialize(400, 40);
  const auto report = check_invariants(system.state(), system.params());
  EXPECT_TRUE(report.ok);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.compromised_clusters, 0u);
  EXPECT_TRUE(report.overlay_connected);
}

TEST(InvariantsTest, DetectsCompromisedCluster) {
  Metrics metrics;
  NowSystem system{small_params(), metrics, 2};
  system.initialize(400, 0);
  // Corrupt 1/3 of one cluster's members by fiat.
  auto& state = const_cast<NowState&>(system.state());
  const auto& first = state.cluster_at(state.cluster_ids().front());
  const std::size_t third = first.size() / 3 + 1;
  for (std::size_t i = 0; i < third; ++i) {
    state.byzantine.insert(first.member_at(i));
  }
  const auto report = check_invariants(state, system.params());
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.compromised_clusters, 1u);
  EXPECT_GT(report.worst_byz_fraction, 0.33);
}

TEST(InvariantsTest, DetectsBrokenBookkeeping) {
  Metrics metrics;
  NowSystem system{small_params(), metrics, 3};
  system.initialize(400, 0);
  auto& state = const_cast<NowState&>(system.state());
  // Point one node's home at the wrong cluster.
  const NodeId node = state.live_nodes().front();
  const ClusterId wrong = state.cluster_ids().back();
  const ClusterId right = state.home_of(node);
  if (wrong != right) {
    state.corrupt_home_for_test(node, wrong);
    const auto report = check_invariants(state, system.params());
    EXPECT_FALSE(report.ok);
  }
}

TEST(InvariantsTest, DetectsUndersizedCluster) {
  Metrics metrics;
  NowSystem system{small_params(), metrics, 4};
  system.initialize(400, 0);
  auto& state = const_cast<NowState&>(system.state());
  // Shrink one cluster below the merge threshold by ripping members out.
  const ClusterId cid = state.cluster_ids().front();
  while (state.cluster_at(cid).size() >= system.params().merge_threshold()) {
    const NodeId m = state.cluster_at(cid).member_at(0);
    state.remove_member(cid, m);
    state.unregister_node(m);
  }
  const auto report = check_invariants(state, system.params());
  EXPECT_FALSE(report.ok);
}

TEST(InvariantsTest, SizeChecksCanBeDisabled) {
  Metrics metrics;
  NowSystem system{small_params(), metrics, 5};
  system.initialize(400, 0);
  auto& state = const_cast<NowState&>(system.state());
  const ClusterId cid = state.cluster_ids().front();
  while (state.cluster_at(cid).size() >= system.params().merge_threshold()) {
    const NodeId m = state.cluster_at(cid).member_at(0);
    state.remove_member(cid, m);
    state.unregister_node(m);
  }
  const auto report =
      check_invariants(state, system.params(), /*check_sizes=*/false);
  EXPECT_TRUE(report.ok);
}

}  // namespace
}  // namespace now::core
