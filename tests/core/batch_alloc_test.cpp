// Allocation-regression guard for the sharded batch engine (DESIGN.md §11).
//
// The engine's per-batch scratch is epoch-stamped and geometrically grown,
// so a steady-state batch must do (a) no work proportional to the slab tail
// or the slot count and (b) no allocation traffic that scales with the
// deployment size. Both properties are asserted here directly:
//   * a counting global operator new measures allocations per batch at two
//     deployment sizes 4x apart — the counts must be about the same (the
//     residual constant-per-batch traffic: std::function spill in
//     parallel_for, amortized Metrics sample growth);
//   * the optimistic commit's footprint array capacity (the old per-batch
//     `foot.resize(slab.tail(), 0)` sweep) must change only O(log) times
//     over a long run — geometric growth, never per-batch work.
// This file deliberately gets its own test binary (one per *_test.cpp), so
// the operator new replacement cannot leak into other suites.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <set>
#include <vector>

#include "core/now.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace now::core {
namespace {

NowParams alloc_params() {
  NowParams p;
  p.max_size = 1 << 12;
  p.walk_mode = WalkMode::kSampleExact;
  p.k = 10;
  p.tau = 0.10;
  return p;
}

constexpr std::size_t kBatchJoins = 64;
constexpr std::size_t kBatchLeaves = 64;
constexpr std::size_t kShards = 4;

/// Mean allocations per batch over `batches` steady-state batches. Victim
/// drawing happens outside the counting window — only the engine's own
/// traffic is measured.
double allocs_per_batch(NowSystem& system, Rng& victim_rng,
                        std::size_t batches) {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < batches; ++b) {
    const auto leaves =
        system.state().sample_distinct_nodes(victim_rng, kBatchLeaves);
    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    (void)system.step_parallel_mixed(kBatchJoins, 0, leaves, kShards);
    total += g_allocs.load(std::memory_order_relaxed) - before;
  }
  return static_cast<double>(total) / static_cast<double>(batches);
}

TEST(BatchAllocTest, SteadyStateAllocationsAreSizeIndependent) {
  constexpr std::size_t kSmallN = 10000;
  constexpr std::size_t kLargeN = 40000;
  Metrics small_metrics;
  Metrics large_metrics;
  NowSystem small(alloc_params(), small_metrics, 71);
  NowSystem large(alloc_params(), large_metrics, 71);
  small.initialize(kSmallN, 0, InitTopology::kModeledSparse);
  large.initialize(kLargeN, 0, InitTopology::kModeledSparse);
  Rng small_victims{5};
  Rng large_victims{5};

  // Warm-up: let every scratch buffer reach steady-state capacity.
  (void)allocs_per_batch(small, small_victims, 8);
  (void)allocs_per_batch(large, large_victims, 8);

  const double small_rate = allocs_per_batch(small, small_victims, 8);
  const double large_rate = allocs_per_batch(large, large_victims, 8);

  // 4x the deployment must not move the per-batch allocation count beyond
  // noise (occasional amortized growth events): if any per-batch
  // O(slot_count) or O(tail) allocation sweep crept back in, large_rate
  // would scale with n and blow far past this bound.
  EXPECT_LE(large_rate, 1.5 * small_rate + 32.0)
      << "small=" << small_rate << " large=" << large_rate;
  // Absolute sanity: steady-state traffic is a small constant per batch.
  EXPECT_LT(large_rate, 512.0);
}

TEST(BatchAllocTest, FootprintArrayGrowsGeometricallyNotPerBatch) {
  Metrics metrics;
  // Force the optimistic resolve so the footprint array is actually in
  // play, whatever the host's core count.
  NowParams params = alloc_params();
  params.resolve_mode = ResolveMode::kOptimistic;
  NowSystem system(params, metrics, 73);
  system.initialize(8000, 0, InitTopology::kModeledSparse);
  Rng victim_rng{7};

  // Growth-heavy churn (more joins than leaves) keeps the slab tail
  // advancing; the footprint capacity must still change only rarely.
  std::set<std::size_t> capacities;
  constexpr std::size_t kBatches = 48;
  for (std::size_t b = 0; b < kBatches; ++b) {
    const auto leaves = system.state().sample_distinct_nodes(victim_rng, 16);
    (void)system.step_parallel_mixed(80, 0, leaves, kShards);
    capacities.insert(system.debug_foot_capacity());
  }
  EXPECT_LE(capacities.size(), 8u)
      << "footprint capacity changed nearly every batch - geometric "
         "growth regressed to per-batch resizing";
  // The capacity covers the slab tail (the conflict footprints key on slab
  // positions), with the doubling headroom on top.
  EXPECT_GE(system.debug_foot_capacity(), system.state().member_slab().tail());
}

}  // namespace
}  // namespace now::core
