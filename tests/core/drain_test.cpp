// Edge-of-envelope tests: draining the system toward its minimum size, the
// single-cluster regime, and rejoin semantics through merges.
#include <gtest/gtest.h>

#include "core/now.hpp"

namespace now::core {
namespace {

NowParams drain_params() {
  NowParams p;
  p.max_size = 1 << 10;
  p.k = 4;
  p.tau = 0.10;
  p.walk_mode = WalkMode::kSampleExact;
  return p;
}

TEST(DrainTest, DrainToSingleClusterAndBack) {
  Metrics metrics;
  NowSystem system{drain_params(), metrics, 1};
  system.initialize(300, 30, InitTopology::kModeledSparse);
  Rng rng{2};

  // Drain until only one cluster remains (merges must collapse the
  // partition without ever wedging).
  while (system.num_clusters() > 1 && system.num_nodes() > 20) {
    system.leave(system.state().random_node(rng));
  }
  EXPECT_GE(system.num_clusters(), 1u);
  const auto low = system.check();
  EXPECT_TRUE(low.ok) << (low.violations.empty() ? "" : low.violations[0]);

  // Grow back: splits must re-populate the overlay.
  for (int i = 0; i < 250; ++i) system.join(rng.bernoulli(0.10));
  EXPECT_GT(system.num_clusters(), 2u);
  const auto high = system.check();
  EXPECT_TRUE(high.ok) << (high.violations.empty() ? "" : high.violations[0]);
}

TEST(DrainTest, RejoinedNodesKeepTheirByzantineStatus) {
  // A merge dissolves a cluster and re-joins its members: corrupted members
  // must remain corrupted (the adversary does not lose nodes to protocol
  // restructuring).
  Metrics metrics;
  NowSystem system{drain_params(), metrics, 3};
  system.initialize(300, 30, InitTopology::kModeledSparse);
  Rng rng{4};
  const std::size_t byz_before = system.state().byzantine_total();
  std::size_t merges = 0;
  // Only remove honest nodes, so the Byzantine population is untouched by
  // the leaves themselves — any change would come from a rejoin bug.
  for (int i = 0; i < 150 && system.num_nodes() > 60; ++i) {
    const auto report =
        system.leave(system.state().random_honest_node(rng));
    merges += report.merges;
  }
  ASSERT_GT(merges, 0u) << "test needs at least one merge to be meaningful";
  EXPECT_EQ(system.state().byzantine_total(), byz_before);
}

TEST(DrainTest, SingleClusterOperationsStillWork) {
  // The degenerate one-cluster system must accept joins and leaves (the
  // overlay is a single isolated vertex; walks return it immediately).
  NowParams p = drain_params();
  Metrics metrics;
  NowSystem system{p, metrics, 5};
  system.initialize(p.cluster_size_target(), 2,
                    InitTopology::kModeledSparse);
  ASSERT_EQ(system.num_clusters(), 1u);
  const auto [node, report] = system.join(false);
  EXPECT_GT(report.cost.messages, 0u);
  system.leave(node);
  EXPECT_TRUE(system.check().ok);
}

TEST(DrainTest, MergeRebalancesOverlayVertexCount) {
  // After any amount of churn the overlay's vertex set and the partition
  // must be exactly in sync (no ghost vertices from dissolved clusters).
  Metrics metrics;
  NowSystem system{drain_params(), metrics, 6};
  system.initialize(400, 40, InitTopology::kModeledSparse);
  Rng rng{7};
  for (int i = 0; i < 120; ++i) {
    if (rng.bernoulli(0.3)) {
      system.join(false);
    } else if (system.num_nodes() > 40) {
      system.leave(system.state().random_node(rng));
    }
    ASSERT_EQ(system.state().overlay.num_clusters(),
              system.num_clusters());
  }
}

}  // namespace
}  // namespace now::core
