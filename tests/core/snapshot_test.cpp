// Tests for the snapshot subsystem (core/snapshot.hpp, DESIGN.md §8): a
// mid-run checkpoint restored into a fresh NowSystem and continued must be
// BIT-IDENTICAL to the uninterrupted run — partitions, node homes, the
// Byzantine ground truth, the system RNG's continued stream and the
// invariant samples — across shard counts {1, 4, 8} and all three
// ResolveModes; and malformed files (wrong magic, unknown version,
// truncation, corruption, parameter drift) must be rejected, never
// misparsed.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/now.hpp"
#include "core/snapshot.hpp"

namespace now::core {
namespace {

NowParams snapshot_params(ResolveMode mode) {
  NowParams p;
  p.max_size = 1 << 12;
  p.walk_mode = WalkMode::kSampleExact;
  p.k = 10;
  p.tau = 0.10;
  p.resolve_mode = mode;
  return p;
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

/// Sorted (cluster id, size) pairs — the full partition signature.
std::vector<std::pair<std::uint64_t, std::size_t>> partition_signature(
    const NowSystem& system) {
  std::vector<std::pair<std::uint64_t, std::size_t>> sig;
  for (const ClusterId id : system.state().cluster_ids()) {
    sig.emplace_back(id.value(), system.state().cluster_at(id).size());
  }
  std::sort(sig.begin(), sig.end());
  return sig;
}

/// One driven batch: 8 joins (1 Byzantine) + 8 leaves picked by
/// `victim_rng`. Identical state + identical victim stream => identical
/// batches, which the equivalence matrix relies on.
std::pair<std::vector<NodeId>, OpReport> drive_batch(NowSystem& system,
                                                     Rng& victim_rng,
                                                     std::size_t shards) {
  const auto leaves = system.state().sample_distinct_nodes(victim_rng, 8);
  return system.step_parallel_mixed(8, 1, leaves, shards);
}

void expect_identical(const NowSystem& a, const NowSystem& b,
                      const std::string& context) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes()) << context;
  EXPECT_EQ(partition_signature(a), partition_signature(b)) << context;
  // Dense orders are part of the deterministic state, not just the sets.
  ASSERT_EQ(a.state().live_nodes().size(), b.state().live_nodes().size());
  for (std::size_t i = 0; i < a.state().live_nodes().size(); ++i) {
    ASSERT_EQ(a.state().live_nodes()[i], b.state().live_nodes()[i])
        << context << " live-node order at " << i;
  }
  ASSERT_EQ(a.state().byzantine.size(), b.state().byzantine.size());
  for (std::size_t i = 0; i < a.state().byzantine.size(); ++i) {
    ASSERT_EQ(a.state().byzantine.at_index(i),
              b.state().byzantine.at_index(i))
        << context << " byzantine order at " << i;
  }
  for (const NodeId node : a.state().live_nodes()) {
    ASSERT_EQ(a.state().home_of(node), b.state().home_of(node))
        << context << " home of " << node;
  }
}

TEST(SnapshotTest, RestoreThenContinueIsBitIdenticalAcrossModes) {
  // The tentpole guarantee, over the full matrix: 3 seeds x shards
  // {1, 4, 8} x {kAuto, kOptimistic, kSequential}. Run A uninterrupted for
  // T1 + T2 batches; run B for T1 batches, save, keep going (saving must
  // not perturb the saving system); restore into a fresh C and continue
  // both for T2 batches. A, B and C must agree on everything observable —
  // including the system RNG's continued state and the invariant report.
  constexpr std::size_t kShardAxis[] = {1, 4, 8};
  constexpr ResolveMode kModes[] = {ResolveMode::kAuto,
                                    ResolveMode::kOptimistic,
                                    ResolveMode::kSequential};
  constexpr int kT1 = 3;
  constexpr int kT2 = 3;
  for (const std::uint64_t seed : {5ull, 21ull, 77ull}) {
    for (const std::size_t shards : kShardAxis) {
      for (const ResolveMode mode : kModes) {
        const std::string context =
            "seed " + std::to_string(seed) + " shards " +
            std::to_string(shards) + " mode " +
            std::to_string(static_cast<int>(mode));
        const std::string path = temp_path("now_roundtrip.snap");
        const NowParams params = snapshot_params(mode);

        Metrics metrics_a;
        NowSystem a{params, metrics_a, seed};
        a.initialize(900, 90, InitTopology::kModeledSparse);
        Rng victims_a{seed ^ 0xBEEF};
        for (int t = 0; t < kT1; ++t) drive_batch(a, victims_a, shards);

        Metrics metrics_b;
        NowSystem b{params, metrics_b, seed};
        b.initialize(900, 90, InitTopology::kModeledSparse);
        Rng victims_b{seed ^ 0xBEEF};
        for (int t = 0; t < kT1; ++t) drive_batch(b, victims_b, shards);
        b.save(path);
        const auto victim_state = victims_b.state();

        Metrics metrics_c;
        NowSystem c{params, metrics_c, seed};
        c.load(path);
        Rng victims_c{0};
        victims_c.restore_state(victim_state);
        expect_identical(a, c, context + " at the checkpoint");

        for (int t = 0; t < kT2; ++t) {
          const auto [ja, ra] = drive_batch(a, victims_a, shards);
          const auto [jb, rb] = drive_batch(b, victims_b, shards);
          const auto [jc, rc] = drive_batch(c, victims_c, shards);
          ASSERT_EQ(ja, jc) << context << " continued batch " << t;
          ASSERT_EQ(jb, jc) << context << " continued batch " << t;
          EXPECT_EQ(ra.wave_count, rc.wave_count) << context;
          EXPECT_EQ(ra.conflicts, rc.conflicts) << context;
          EXPECT_EQ(ra.cost.messages, rc.cost.messages) << context;
          EXPECT_EQ(ra.cost.rounds, rc.cost.rounds) << context;
          EXPECT_EQ(ra.splits, rc.splits) << context;
          EXPECT_EQ(ra.merges, rc.merges) << context;
        }
        expect_identical(a, c, context + " after continuation");
        expect_identical(b, c, context + " saver vs restorer");
        // RNG-stream continuation: the restored generator sits in the
        // exact same state as the uninterrupted one.
        EXPECT_EQ(a.rng().state(), c.rng().state()) << context;
        // Invariant samples drawn now are identical field by field.
        const auto inv_a = a.check();
        const auto inv_c = c.check();
        EXPECT_EQ(inv_a.ok, inv_c.ok);
        EXPECT_EQ(inv_a.num_nodes, inv_c.num_nodes);
        EXPECT_EQ(inv_a.num_clusters, inv_c.num_clusters);
        EXPECT_EQ(inv_a.min_cluster_size, inv_c.min_cluster_size);
        EXPECT_EQ(inv_a.max_cluster_size, inv_c.max_cluster_size);
        EXPECT_EQ(inv_a.worst_byz_fraction, inv_c.worst_byz_fraction);
        EXPECT_EQ(inv_a.compromised_clusters, inv_c.compromised_clusters);
        EXPECT_EQ(inv_a.overlay_max_degree, inv_c.overlay_max_degree);
        EXPECT_EQ(inv_a.overlay_connected, inv_c.overlay_connected);
        std::remove(path.c_str());
      }
    }
  }
}

TEST(SnapshotTest, LegacySequentialOpsContinueIdenticallyToo) {
  // The sequential engine draws from the system RNG directly, so this is
  // the path that exercises the saved rng state hardest.
  const NowParams params = snapshot_params(ResolveMode::kAuto);
  const std::string path = temp_path("now_legacy.snap");
  Metrics ma;
  Metrics mb;
  NowSystem a{params, ma, 123};
  NowSystem b{params, mb, 123};
  a.initialize(700, 70, InitTopology::kModeledSparse);
  b.initialize(700, 70, InitTopology::kModeledSparse);
  for (int i = 0; i < 10; ++i) {
    a.join(i % 3 == 0);
    b.join(i % 3 == 0);
  }
  b.save(path);
  Metrics mc;
  NowSystem c{params, mc, 123};
  c.load(path);
  for (int i = 0; i < 10; ++i) {
    const auto [na, ra] = a.join(false);
    const auto [nc, rc] = c.join(false);
    ASSERT_EQ(na, nc);
    EXPECT_EQ(ra.cost.messages, rc.cost.messages);
    a.leave(na);
    c.leave(nc);
  }
  expect_identical(a, c, "legacy ops");
  EXPECT_EQ(a.rng().state(), c.rng().state());
  std::remove(path.c_str());
}

TEST(SnapshotTest, DirtySamplerOverlaySurvivesTheRoundTrip) {
  // At small scales every batch crosses the alias rebuild threshold, so
  // the saved sampler state is trivial (clean table, empty dirty list).
  // At this scale (~600 clusters, 4+4 ops/batch) the dirty overlay
  // SURVIVES across batches and draw_biased's rejection pattern — and
  // therefore every subsequent partner draw — depends on the exact stale
  // weights and dirty-list order. Restoring must reproduce them verbatim;
  // restore-then-continue diverges within two batches if it does not.
  NowParams p;  // default k -> ~33-member clusters, ~600 of them
  p.max_size = 1 << 15;
  p.walk_mode = WalkMode::kSampleExact;
  const std::string path = temp_path("now_dirty.snap");
  Metrics ma;
  Metrics mb;
  NowSystem a{p, ma, 101};
  NowSystem b{p, mb, 101};
  a.initialize(20000, 1500, InitTopology::kModeledSparse);
  b.initialize(20000, 1500, InitTopology::kModeledSparse);
  Rng victims_a{101 ^ 5};
  Rng victims_b{101 ^ 5};
  for (int t = 0; t < 3; ++t) {
    const auto la = a.state().sample_distinct_nodes(victims_a, 4);
    const auto lb = b.state().sample_distinct_nodes(victims_b, 4);
    a.step_parallel_mixed(4, 1, la, 4);
    b.step_parallel_mixed(4, 1, lb, 4);
  }
  b.save(path);
  Metrics mc;
  NowSystem c{p, mc, 101};
  c.load(path);
  Rng victims_c{0};
  victims_c.restore_state(victims_b.state());
  for (int t = 0; t < 4; ++t) {
    const auto la = a.state().sample_distinct_nodes(victims_a, 4);
    const auto lc = c.state().sample_distinct_nodes(victims_c, 4);
    ASSERT_EQ(la, lc) << "batch " << t;
    const auto [ja, ra] = a.step_parallel_mixed(4, 1, la, 4);
    const auto [jc, rc] = c.step_parallel_mixed(4, 1, lc, 4);
    ASSERT_EQ(ja, jc) << "batch " << t;
    EXPECT_EQ(ra.cost.messages, rc.cost.messages) << "batch " << t;
  }
  expect_identical(a, c, "dirty-overlay continuation");
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsWrongMagicVersionTruncationAndCorruption) {
  const NowParams params = snapshot_params(ResolveMode::kAuto);
  const std::string path = temp_path("now_reject.snap");
  Metrics metrics;
  NowSystem system{params, metrics, 9};
  system.initialize(300, 30, InitTopology::kModeledSparse);
  system.save(path);

  const auto read_bytes = [&]() {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const auto write_bytes = [&](const std::string& bytes,
                               const std::string& where) {
    std::ofstream out(where, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamoff>(bytes.size()));
  };
  const std::string good = read_bytes();

  const auto expect_rejected = [&](const std::string& bytes,
                                   const char* what) {
    const std::string bad_path = temp_path("now_reject_bad.snap");
    write_bytes(bytes, bad_path);
    Metrics m;
    NowSystem fresh{params, m, 9};
    EXPECT_THROW(fresh.load(bad_path), SnapshotError) << what;
    std::remove(bad_path.c_str());
  };

  // Wrong magic.
  std::string bad = good;
  bad[0] = 'X';
  expect_rejected(bad, "magic");
  // Unknown (future) format version.
  bad = good;
  bad[8] = static_cast<char>(kSnapshotFormatVersion + 1);
  expect_rejected(bad, "version");
  // Truncation, both mid-payload and inside the checksum.
  expect_rejected(good.substr(0, good.size() / 2), "truncated payload");
  expect_rejected(good.substr(0, good.size() - 3), "truncated checksum");
  // Flipped payload byte: the checksum must catch it.
  bad = good;
  bad[good.size() / 2] ^= static_cast<char>(0x40);
  expect_rejected(bad, "corruption");

  // Parameter drift: same file, different behavior-relevant params.
  NowParams drifted = params;
  drifted.k = params.k + 1;
  Metrics m2;
  NowSystem other{drifted, m2, 9};
  EXPECT_THROW(other.load(path), SnapshotError);

  // resolve_mode is NOT behavior-relevant: loading under another mode is
  // allowed (the strategies are bit-identical).
  NowParams other_mode = params;
  other_mode.resolve_mode = ResolveMode::kSequential;
  Metrics m3;
  NowSystem fine{other_mode, m3, 9};
  EXPECT_NO_THROW(fine.load(path));

  // A system that already ran must refuse to load over itself.
  EXPECT_THROW(system.load(path), SnapshotError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace now::core
