// Tests for the sharded batch engine (DESIGN.md §7): the single-shard
// equivalence guarantee (shard count never changes results, only wall
// clock), the per-shard OpReport accounting, and the conflict-dropping
// commit phase.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "core/now.hpp"

namespace now::core {
namespace {

NowParams shard_params() {
  NowParams p;
  p.max_size = 1 << 12;
  p.walk_mode = WalkMode::kSampleExact;
  // Tests below assert the compromise invariant after every batch; at the
  // default k = 3 a ~24-member cluster grazes 1/3 on unlucky seeds (the
  // finite-size whp caveat the thm3/remark tests document), so scale k the
  // way Lemma 1 prescribes.
  p.k = 10;
  p.tau = 0.10;
  return p;
}

/// Distinct live victims drawn with `rng`; identical state + identical rng
/// stream => identical victims, which the equivalence test relies on.
std::vector<NodeId> pick_victims(const NowSystem& system, std::size_t count,
                                 Rng& rng) {
  return system.state().sample_distinct_nodes(rng, count);
}

/// Sorted (cluster id, size) pairs — the full partition signature.
std::vector<std::pair<std::uint64_t, std::size_t>> partition_signature(
    const NowSystem& system) {
  std::vector<std::pair<std::uint64_t, std::size_t>> sig;
  for (const ClusterId id : system.state().cluster_ids()) {
    sig.emplace_back(id.value(), system.state().cluster_at(id).size());
  }
  std::sort(sig.begin(), sig.end());
  return sig;
}

TEST(ShardTest, ShardCountDoesNotChangeResults) {
  // Same seed, same batches: shards ∈ {1, 4, 8} must produce an IDENTICAL
  // partition — same cluster ids, same sizes, same node homes, same
  // Byzantine ground truth — with the parallel two-stage commit and the
  // wave scheduler engaged, because plans depend only on the start-of-step
  // snapshot and per-op/per-wave derived RNG streams, the wave list is
  // collected in canonical cluster order, and the commit resolves every
  // move in canonical order. Three seeds, mixed batches: joins, leaves and
  // a Byzantine fraction of the joiners in every round.
  for (const std::uint64_t seed : {11ull, 29ull, 47ull}) {
    constexpr std::size_t kShardAxis[] = {1, 4, 8};
    std::vector<std::unique_ptr<Metrics>> metrics;
    std::vector<std::unique_ptr<NowSystem>> systems;
    std::vector<Rng> victim_rngs;
    for (std::size_t v = 0; v < std::size(kShardAxis); ++v) {
      metrics.push_back(std::make_unique<Metrics>());
      systems.push_back(
          std::make_unique<NowSystem>(shard_params(), *metrics.back(), seed));
      systems.back()->initialize(1200, 120, InitTopology::kModeledSparse);
      victim_rngs.emplace_back(seed ^ 99);
    }

    for (int round = 0; round < 4; ++round) {
      // Mixed batch: 14 joins of which `round` are Byzantine, 10 leaves.
      const std::size_t byz_joins = static_cast<std::size_t>(round);
      std::vector<std::vector<NodeId>> joined(std::size(kShardAxis));
      std::vector<OpReport> reports(std::size(kShardAxis));
      for (std::size_t v = 0; v < std::size(kShardAxis); ++v) {
        const auto leaves = pick_victims(*systems[v], 10, victim_rngs[v]);
        std::tie(joined[v], reports[v]) = systems[v]->step_parallel_mixed(
            14, byz_joins, leaves, kShardAxis[v]);
      }
      for (std::size_t v = 1; v < std::size(kShardAxis); ++v) {
        ASSERT_EQ(joined[0], joined[v])
            << "seed " << seed << " round " << round << " shards "
            << kShardAxis[v];
        EXPECT_EQ(reports[0].splits, reports[v].splits);
        EXPECT_EQ(reports[0].merges, reports[v].merges);
        EXPECT_EQ(reports[0].conflicts, reports[v].conflicts);
        EXPECT_EQ(reports[0].wave_count, reports[v].wave_count);
        EXPECT_EQ(reports[0].cost.rounds, reports[v].cost.rounds);
      }
      EXPECT_GT(reports[0].wave_count, 0u);
    }

    for (std::size_t v = 1; v < std::size(kShardAxis); ++v) {
      EXPECT_EQ(systems[0]->num_nodes(), systems[v]->num_nodes());
      EXPECT_EQ(partition_signature(*systems[0]),
                partition_signature(*systems[v]));
      for (const NodeId node : systems[0]->state().live_nodes()) {
        ASSERT_EQ(systems[0]->state().home_of(node),
                  systems[v]->state().home_of(node))
            << "seed " << seed << " shards " << kShardAxis[v];
        EXPECT_EQ(systems[0]->state().byzantine.contains(node),
                  systems[v]->state().byzantine.contains(node));
      }
      EXPECT_EQ(systems[0]->state().byzantine.size(),
                systems[v]->state().byzantine.size());
      EXPECT_TRUE(systems[v]->check().ok);
    }
    EXPECT_TRUE(systems[0]->check().ok);
  }
}

TEST(ShardTest, WaveSchedulerRunsOneWavePerTouchedCluster) {
  // Several operations landing on one cluster must still produce at most
  // one primary wave per cluster; with a single-cluster partition there is
  // nobody to swap with, so an entire batch yields exactly one wave (the
  // target cluster's own, with zero swaps) — and never one per operation.
  NowParams p = shard_params();
  Metrics metrics;
  NowSystem system{p, metrics, 71};
  system.initialize(60, 0, InitTopology::kModeledSparse);
  ASSERT_EQ(system.num_clusters(), 1u);
  const auto [joined, report] = system.step_parallel_sharded(6, {}, false, 4);
  ASSERT_EQ(joined.size(), 6u);
  EXPECT_EQ(report.wave_count, 1u);  // 6 joins, one touched cluster
  EXPECT_EQ(report.conflicts, 0u);
  EXPECT_TRUE(system.check().ok);

  // In a multi-cluster deployment the wave count is bounded by the number
  // of live clusters (one wave per cluster per time step), even though the
  // sequential engine would run one exchange per join plus one per leave
  // partner — the O(partners x swaps) duplication the scheduler removes.
  Metrics big_metrics;
  NowSystem big{shard_params(), big_metrics, 73};
  big.initialize(1000, 0, InitTopology::kModeledSparse);
  Rng victims{5};
  const auto leaves = big.state().sample_distinct_nodes(victims, 12);
  const auto [j2, r2] = big.step_parallel_sharded(12, leaves, false, 4);
  EXPECT_GT(r2.wave_count, 0u);
  EXPECT_LE(r2.wave_count, big.num_clusters());
  EXPECT_TRUE(big.check().ok);
}

TEST(ShardTest, ClusterSizeMultisetMatchesAcrossShardCounts) {
  // The headline equivalence stated in DESIGN.md §7, on the multiset of
  // cluster sizes (id-agnostic) after a heavier mixed run.
  std::map<std::size_t, std::size_t> histogram[2];
  for (int variant = 0; variant < 2; ++variant) {
    Metrics metrics;
    NowSystem system{shard_params(), metrics, 23};
    system.initialize(900, 90, InitTopology::kModeledSparse);
    Rng victims{7};
    for (int round = 0; round < 6; ++round) {
      const auto leaves = pick_victims(system, 8, victims);
      system.step_parallel_sharded(8, leaves, false,
                                   variant == 0 ? 1 : 4);
    }
    for (const ClusterId id : system.state().cluster_ids()) {
      histogram[variant][system.state().cluster_at(id).size()] += 1;
    }
    EXPECT_TRUE(system.check().ok);
  }
  EXPECT_EQ(histogram[0], histogram[1]);
}

TEST(ShardTest, PerShardCostsMergeIntoReport) {
  Metrics metrics;
  NowSystem system{shard_params(), metrics, 31};
  system.initialize(1000, 100, InitTopology::kModeledSparse);
  Rng victims{3};
  const auto leaves = pick_victims(system, 9, victims);

  const auto joins_before = metrics.operation_count(metrics.find("join"));
  const auto leaves_before = metrics.operation_count(metrics.find("leave"));
  const auto [joined, report] =
      system.step_parallel_sharded(9, leaves, false, 3);
  ASSERT_EQ(joined.size(), 9u);

  // One planning-cost entry per shard; every planned message is accounted
  // exactly once: batch cost = sum of shard costs + the sequential commit.
  ASSERT_EQ(report.shard_costs.size(), 3u);
  std::uint64_t planned_messages = 0;
  for (const Cost& shard : report.shard_costs) {
    EXPECT_GT(shard.messages, 0u);
    planned_messages += shard.messages;
  }
  EXPECT_EQ(report.cost.messages,
            planned_messages + report.commit_cost.messages);

  // Per-operation samples from the shard-local Metrics instances were
  // merged back under the standard labels.
  EXPECT_EQ(metrics.operation_count(metrics.find("join")), joins_before + 9);
  EXPECT_EQ(metrics.operation_count(metrics.find("leave")), leaves_before + 9);

  // Rounds combine by max over the overlapped operations plus the deferred
  // commit restructuring — never the sum of all per-op rounds.
  const auto join_samples = metrics.operation_samples(metrics.find("join"));
  std::uint64_t sum_rounds = 0;
  for (auto it = join_samples.end() - 9; it != join_samples.end(); ++it) {
    sum_rounds += it->rounds;
  }
  EXPECT_GT(report.cost.rounds, 0u);
  EXPECT_LT(report.cost.rounds, sum_rounds + report.commit_cost.rounds + 1);
}

TEST(ShardTest, ShardedBatchConservesNodesAndInvariants) {
  Metrics metrics;
  NowSystem system{shard_params(), metrics, 41};
  system.initialize(800, 120, InitTopology::kModeledSparse);
  Rng victims{13};
  std::size_t expected = 800;
  for (int round = 0; round < 5; ++round) {
    const auto leaves = pick_victims(system, 6, victims);
    const auto [joined, report] =
        system.step_parallel_sharded(11, leaves, false, 4);
    EXPECT_EQ(joined.size(), 11u);
    expected += 11 - 6;
    ASSERT_EQ(system.num_nodes(), expected);
    const auto inv = system.check();
    ASSERT_TRUE(inv.ok) << (inv.violations.empty() ? ""
                                                   : inv.violations[0]);
  }
}

TEST(ShardTest, LeaveHeavyQuotaBatchesPreserveBitIdentity) {
  // The forced-leave DoS regime: most of a batch's leaves are concentrated
  // on one or two clusters (the scenario layer's batch_leave_quota targets
  // the worst/smallest ones) while joins trickle in — the leave-heavy
  // mixed batches the optimistic resolve must keep shard-count
  // independent. Victims are drawn from a single cluster per round, plus a
  // Byzantine joiner, across shards {1, 4, 8} and three seeds — with the
  // optimistic resolve FORCED (kOptimistic guarantees a real pool worker,
  // so the threaded classification/gather paths run even on 1-core boxes).
  for (const std::uint64_t seed : {13ull, 37ull, 59ull}) {
    constexpr std::size_t kShardAxis[] = {1, 4, 8};
    NowParams p = shard_params();
    p.resolve_mode = ResolveMode::kOptimistic;
    std::vector<std::unique_ptr<Metrics>> metrics;
    std::vector<std::unique_ptr<NowSystem>> systems;
    for (std::size_t v = 0; v < std::size(kShardAxis); ++v) {
      metrics.push_back(std::make_unique<Metrics>());
      systems.push_back(
          std::make_unique<NowSystem>(p, *metrics.back(), seed));
      systems.back()->initialize(1100, 110, InitTopology::kModeledSparse);
    }

    for (int round = 0; round < 4; ++round) {
      std::vector<std::vector<NodeId>> joined(std::size(kShardAxis));
      std::vector<OpReport> reports(std::size(kShardAxis));
      for (std::size_t v = 0; v < std::size(kShardAxis); ++v) {
        // Leave-heavy: 4 joins vs 12 leaves, 10 of them members of one
        // cluster (deterministic pick, rotating through the live-cluster
        // list by round), the rest spread by a per-variant RNG with
        // identical streams.
        const auto& state = systems[v]->state();
        const ClusterId target = state.cluster_ids()
            [static_cast<std::size_t>(round) % state.cluster_ids().size()];
        std::vector<NodeId> leaves;
        for (const NodeId member : state.cluster_at(target).members()) {
          if (leaves.size() >= 10) break;
          leaves.push_back(member);
        }
        Rng fill{seed ^
                 (std::uint64_t{0xF0F0} + static_cast<std::uint64_t>(round))};
        while (leaves.size() < 12) {
          const NodeId candidate = state.random_node(fill);
          if (std::find(leaves.begin(), leaves.end(), candidate) ==
              leaves.end()) {
            leaves.push_back(candidate);
          }
        }
        std::tie(joined[v], reports[v]) = systems[v]->step_parallel_mixed(
            4, /*byzantine_joins=*/1, leaves, kShardAxis[v]);
      }
      for (std::size_t v = 1; v < std::size(kShardAxis); ++v) {
        ASSERT_EQ(joined[0], joined[v])
            << "seed " << seed << " round " << round;
        EXPECT_EQ(reports[0].conflicts, reports[v].conflicts);
        EXPECT_EQ(reports[0].wave_count, reports[v].wave_count);
        EXPECT_EQ(reports[0].splits, reports[v].splits);
        EXPECT_EQ(reports[0].merges, reports[v].merges);
        EXPECT_EQ(reports[0].cost.rounds, reports[v].cost.rounds);
      }
    }

    for (std::size_t v = 1; v < std::size(kShardAxis); ++v) {
      EXPECT_EQ(partition_signature(*systems[0]),
                partition_signature(*systems[v]));
      for (const NodeId node : systems[0]->state().live_nodes()) {
        ASSERT_EQ(systems[0]->state().home_of(node),
                  systems[v]->state().home_of(node))
            << "seed " << seed << " shards " << kShardAxis[v];
      }
      EXPECT_TRUE(systems[v]->check().ok);
    }
  }
}

TEST(ShardTest, ResolveStrategiesAreBitIdentical) {
  // The tentpole guarantee: the optimistic (parallel, multi-pass) resolve
  // and the canonical sequential resolve commit IDENTICAL states — the
  // conflict-detection pass re-resolves exactly the swaps whose outcome
  // could differ from the planned one. Forcing kOptimistic exercises the
  // parallel engine's code path even on single-core boxes (where kAuto
  // picks the sequential strategy).
  constexpr ResolveMode kModes[] = {ResolveMode::kSequential,
                                    ResolveMode::kOptimistic};
  std::vector<std::unique_ptr<Metrics>> metrics;
  std::vector<std::unique_ptr<NowSystem>> systems;
  std::vector<Rng> victim_rngs;
  for (const ResolveMode mode : kModes) {
    NowParams p = shard_params();
    p.resolve_mode = mode;
    metrics.push_back(std::make_unique<Metrics>());
    systems.push_back(
        std::make_unique<NowSystem>(p, *metrics.back(), 83));
    systems.back()->initialize(1000, 100, InitTopology::kModeledSparse);
    victim_rngs.emplace_back(83 ^ 7);
  }

  std::size_t total_replays = 0;
  for (int round = 0; round < 6; ++round) {
    std::vector<std::vector<NodeId>> joined(std::size(kModes));
    std::vector<OpReport> reports(std::size(kModes));
    for (std::size_t v = 0; v < std::size(kModes); ++v) {
      const auto leaves = pick_victims(*systems[v], 9, victim_rngs[v]);
      std::tie(joined[v], reports[v]) = systems[v]->step_parallel_mixed(
          12, /*byzantine_joins=*/2, leaves, 4);
    }
    ASSERT_EQ(joined[0], joined[1]) << "round " << round;
    EXPECT_EQ(reports[0].conflicts, reports[1].conflicts);
    EXPECT_EQ(reports[0].wave_count, reports[1].wave_count);
    EXPECT_EQ(reports[0].cost.messages, reports[1].cost.messages);
    EXPECT_EQ(reports[0].cost.rounds, reports[1].cost.rounds);
    // The sequential strategy never classifies, so replays stay 0 there;
    // the optimistic strategy reports what the conflict pass re-resolved.
    EXPECT_EQ(reports[0].resolve_replays, 0u);
    total_replays += reports[1].resolve_replays;
  }
  EXPECT_EQ(partition_signature(*systems[0]),
            partition_signature(*systems[1]));
  for (const NodeId node : systems[0]->state().live_nodes()) {
    ASSERT_EQ(systems[0]->state().home_of(node),
              systems[1]->state().home_of(node));
  }
  EXPECT_TRUE(systems[0]->check().ok);
  EXPECT_TRUE(systems[1]->check().ok);
  (void)total_replays;  // may legitimately be 0 on conflict-free seeds
}

TEST(ShardTest, IncrementalPlanCacheMatchesFullRebuild) {
  // Same seed, same batches: one system keeps its PlanCache across batches
  // (incremental maintenance), the other is forced to rebuild from scratch
  // before every step. Every message charge the planners make flows
  // through the cached aggregates (neighborhood populations, walk cost
  // model, alias sampler), so any maintenance drift — a stale neighbor
  // population, a missed size delta — shows up as diverging messages or
  // partitions here. At this scale the batch dirties more than k/16
  // entries, so the alias overlay rebuilds after each commit and both
  // systems plan with a clean (two-uniform-draw) sampler: outcomes are
  // exactly bitwise equal. (The dirty overlay's law is covered
  // statistically in plan_cache_test.)
  Metrics metrics_inc;
  Metrics metrics_rebuild;
  NowSystem incremental{shard_params(), metrics_inc, 91};
  NowSystem rebuild{shard_params(), metrics_rebuild, 91};
  incremental.initialize(900, 90, InitTopology::kModeledSparse);
  rebuild.initialize(900, 90, InitTopology::kModeledSparse);
  Rng victims_a{17};
  Rng victims_b{17};

  for (int round = 0; round < 5; ++round) {
    const auto leaves_a = pick_victims(incremental, 7, victims_a);
    const auto leaves_b = pick_victims(rebuild, 7, victims_b);
    ASSERT_EQ(leaves_a, leaves_b);
    rebuild.invalidate_plan_cache();
    const auto [ja, ra] =
        incremental.step_parallel_mixed(7, 1, leaves_a, 4);
    const auto [jb, rb] = rebuild.step_parallel_mixed(7, 1, leaves_b, 4);
    ASSERT_EQ(ja, jb) << "round " << round;
    EXPECT_EQ(ra.cost.messages, rb.cost.messages) << "round " << round;
    EXPECT_EQ(ra.cost.rounds, rb.cost.rounds);
    EXPECT_EQ(ra.wave_count, rb.wave_count);
    EXPECT_EQ(ra.conflicts, rb.conflicts);
  }
  EXPECT_EQ(partition_signature(incremental), partition_signature(rebuild));
  for (const NodeId node : incremental.state().live_nodes()) {
    ASSERT_EQ(incremental.state().home_of(node),
              rebuild.state().home_of(node));
  }
  EXPECT_TRUE(incremental.check().ok);
  EXPECT_TRUE(rebuild.check().ok);
}

TEST(ShardTest, DirtyAliasOverlayStaysShardCountIndependent) {
  // Regression test: at a scale where a batch dirties fewer than k/16
  // alias entries, the PlanCache dirty overlay SURVIVES into the next
  // batch's planning and a size-biased partner draw can land in
  // draw_biased's dirty branch — a linear scan of dirty_list, whose order
  // is therefore observable. That order must be canonical: before the
  // commit sorted its size deltas by slot, it followed stage 1's
  // shard-count-dependent slot-block concatenation, and shards 1 vs 4
  // diverged by thousands of node homes within two batches (the small
  // deployments of the tests above never caught it, because there the
  // k/16 threshold rebuilds the table after every batch).
  NowParams p;  // default k -> ~33-member clusters, ~600 of them
  p.max_size = 1 << 15;
  p.walk_mode = WalkMode::kSampleExact;
  constexpr std::size_t kShardAxis[] = {1, 4};
  std::vector<std::unique_ptr<Metrics>> metrics;
  std::vector<std::unique_ptr<NowSystem>> systems;
  std::vector<Rng> victim_rngs;
  for (std::size_t v = 0; v < std::size(kShardAxis); ++v) {
    metrics.push_back(std::make_unique<Metrics>());
    systems.push_back(
        std::make_unique<NowSystem>(p, *metrics.back(), 101));
    systems.back()->initialize(20000, 1500, InitTopology::kModeledSparse);
    victim_rngs.emplace_back(101 ^ 5);
  }

  for (int round = 0; round < 6; ++round) {
    std::vector<std::vector<NodeId>> joined(std::size(kShardAxis));
    for (std::size_t v = 0; v < std::size(kShardAxis); ++v) {
      const auto leaves = pick_victims(*systems[v], 4, victim_rngs[v]);
      std::tie(joined[v], std::ignore) = systems[v]->step_parallel_mixed(
          4, /*byzantine_joins=*/1, leaves, kShardAxis[v]);
    }
    ASSERT_EQ(joined[0], joined[1]) << "round " << round;
    for (const NodeId node : systems[0]->state().live_nodes()) {
      ASSERT_EQ(systems[0]->state().home_of(node),
                systems[1]->state().home_of(node))
          << "round " << round;
    }
  }
  EXPECT_EQ(partition_signature(*systems[0]),
            partition_signature(*systems[1]));
}

TEST(ShardTest, LegacyPathIsUntouchedByDefault) {
  // step_parallel with shards<=1 must keep using the historical sequential
  // engine and the system RNG stream: identical to a plain join/leave loop.
  Metrics metrics_batch;
  Metrics metrics_loop;
  NowSystem batch{shard_params(), metrics_batch, 55};
  NowSystem loop{shard_params(), metrics_loop, 55};
  batch.initialize(600, 60, InitTopology::kModeledSparse);
  loop.initialize(600, 60, InitTopology::kModeledSparse);

  const auto [joined, report] = batch.step_parallel(5, {});
  (void)report;
  for (int i = 0; i < 5; ++i) loop.join(false);

  ASSERT_EQ(joined.size(), 5u);
  EXPECT_EQ(partition_signature(batch), partition_signature(loop));
}

}  // namespace
}  // namespace now::core
