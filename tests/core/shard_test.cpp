// Tests for the sharded batch engine (DESIGN.md §7): the single-shard
// equivalence guarantee (shard count never changes results, only wall
// clock), the per-shard OpReport accounting, and the conflict-dropping
// commit phase.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/now.hpp"

namespace now::core {
namespace {

NowParams shard_params() {
  NowParams p;
  p.max_size = 1 << 12;
  p.walk_mode = WalkMode::kSampleExact;
  // Tests below assert the compromise invariant after every batch; at the
  // default k = 3 a ~24-member cluster grazes 1/3 on unlucky seeds (the
  // finite-size whp caveat the thm3/remark tests document), so scale k the
  // way Lemma 1 prescribes.
  p.k = 10;
  p.tau = 0.10;
  return p;
}

/// Distinct live victims drawn with `rng`; identical state + identical rng
/// stream => identical victims, which the equivalence test relies on.
std::vector<NodeId> pick_victims(const NowSystem& system, std::size_t count,
                                 Rng& rng) {
  return system.state().sample_distinct_nodes(rng, count);
}

/// Sorted (cluster id, size) pairs — the full partition signature.
std::vector<std::pair<std::uint64_t, std::size_t>> partition_signature(
    const NowSystem& system) {
  std::vector<std::pair<std::uint64_t, std::size_t>> sig;
  for (const ClusterId id : system.state().cluster_ids()) {
    sig.emplace_back(id.value(), system.state().cluster_at(id).size());
  }
  std::sort(sig.begin(), sig.end());
  return sig;
}

TEST(ShardTest, ShardCountDoesNotChangeResults) {
  // Same seed, same batches: shards=1 and shards=4 must produce an
  // IDENTICAL partition — same cluster ids, same sizes, same node homes —
  // because plans depend only on the start-of-step snapshot and per-op
  // derived RNG streams, and the commit applies them in operation order.
  Metrics metrics_a;
  Metrics metrics_b;
  NowSystem a{shard_params(), metrics_a, 11};
  NowSystem b{shard_params(), metrics_b, 11};
  a.initialize(1200, 120, InitTopology::kModeledSparse);
  b.initialize(1200, 120, InitTopology::kModeledSparse);
  Rng victims_a{99};
  Rng victims_b{99};

  for (int round = 0; round < 4; ++round) {
    const auto leaves_a = pick_victims(a, 10, victims_a);
    const auto leaves_b = pick_victims(b, 10, victims_b);
    ASSERT_EQ(leaves_a, leaves_b) << "diverged before round " << round;
    const auto [joined_a, report_a] =
        a.step_parallel_sharded(14, leaves_a, round % 2 == 0, 1);
    const auto [joined_b, report_b] =
        b.step_parallel_sharded(14, leaves_b, round % 2 == 0, 4);
    EXPECT_EQ(joined_a, joined_b);
    EXPECT_EQ(report_a.splits, report_b.splits);
    EXPECT_EQ(report_a.merges, report_b.merges);
    EXPECT_EQ(report_a.conflicts, report_b.conflicts);
  }

  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(partition_signature(a), partition_signature(b));
  for (const NodeId node : a.state().live_nodes()) {
    ASSERT_EQ(a.state().home_of(node), b.state().home_of(node));
  }
  EXPECT_TRUE(a.check().ok);
  EXPECT_TRUE(b.check().ok);
}

TEST(ShardTest, ClusterSizeMultisetMatchesAcrossShardCounts) {
  // The headline equivalence stated in DESIGN.md §7, on the multiset of
  // cluster sizes (id-agnostic) after a heavier mixed run.
  std::map<std::size_t, std::size_t> histogram[2];
  for (int variant = 0; variant < 2; ++variant) {
    Metrics metrics;
    NowSystem system{shard_params(), metrics, 23};
    system.initialize(900, 90, InitTopology::kModeledSparse);
    Rng victims{7};
    for (int round = 0; round < 6; ++round) {
      const auto leaves = pick_victims(system, 8, victims);
      system.step_parallel_sharded(8, leaves, false,
                                   variant == 0 ? 1 : 4);
    }
    for (const ClusterId id : system.state().cluster_ids()) {
      histogram[variant][system.state().cluster_at(id).size()] += 1;
    }
    EXPECT_TRUE(system.check().ok);
  }
  EXPECT_EQ(histogram[0], histogram[1]);
}

TEST(ShardTest, PerShardCostsMergeIntoReport) {
  Metrics metrics;
  NowSystem system{shard_params(), metrics, 31};
  system.initialize(1000, 100, InitTopology::kModeledSparse);
  Rng victims{3};
  const auto leaves = pick_victims(system, 9, victims);

  const auto joins_before = metrics.operation_count("join");
  const auto leaves_before = metrics.operation_count("leave");
  const auto [joined, report] =
      system.step_parallel_sharded(9, leaves, false, 3);
  ASSERT_EQ(joined.size(), 9u);

  // One planning-cost entry per shard; every planned message is accounted
  // exactly once: batch cost = sum of shard costs + the sequential commit.
  ASSERT_EQ(report.shard_costs.size(), 3u);
  std::uint64_t planned_messages = 0;
  for (const Cost& shard : report.shard_costs) {
    EXPECT_GT(shard.messages, 0u);
    planned_messages += shard.messages;
  }
  EXPECT_EQ(report.cost.messages,
            planned_messages + report.commit_cost.messages);

  // Per-operation samples from the shard-local Metrics instances were
  // merged back under the standard labels.
  EXPECT_EQ(metrics.operation_count("join"), joins_before + 9);
  EXPECT_EQ(metrics.operation_count("leave"), leaves_before + 9);

  // Rounds combine by max over the overlapped operations plus the deferred
  // commit restructuring — never the sum of all per-op rounds.
  const auto join_samples = metrics.operation_samples("join");
  std::uint64_t sum_rounds = 0;
  for (auto it = join_samples.end() - 9; it != join_samples.end(); ++it) {
    sum_rounds += it->rounds;
  }
  EXPECT_GT(report.cost.rounds, 0u);
  EXPECT_LT(report.cost.rounds, sum_rounds + report.commit_cost.rounds + 1);
}

TEST(ShardTest, ShardedBatchConservesNodesAndInvariants) {
  Metrics metrics;
  NowSystem system{shard_params(), metrics, 41};
  system.initialize(800, 120, InitTopology::kModeledSparse);
  Rng victims{13};
  std::size_t expected = 800;
  for (int round = 0; round < 5; ++round) {
    const auto leaves = pick_victims(system, 6, victims);
    const auto [joined, report] =
        system.step_parallel_sharded(11, leaves, false, 4);
    EXPECT_EQ(joined.size(), 11u);
    expected += 11 - 6;
    ASSERT_EQ(system.num_nodes(), expected);
    const auto inv = system.check();
    ASSERT_TRUE(inv.ok) << (inv.violations.empty() ? ""
                                                   : inv.violations[0]);
  }
}

TEST(ShardTest, LegacyPathIsUntouchedByDefault) {
  // step_parallel with shards<=1 must keep using the historical sequential
  // engine and the system RNG stream: identical to a plain join/leave loop.
  Metrics metrics_batch;
  Metrics metrics_loop;
  NowSystem batch{shard_params(), metrics_batch, 55};
  NowSystem loop{shard_params(), metrics_loop, 55};
  batch.initialize(600, 60, InitTopology::kModeledSparse);
  loop.initialize(600, 60, InitTopology::kModeledSparse);

  const auto [joined, report] = batch.step_parallel(5, {});
  (void)report;
  for (int i = 0; i < 5; ++i) loop.join(false);

  ASSERT_EQ(joined.size(), 5u);
  EXPECT_EQ(partition_signature(batch), partition_signature(loop));
}

}  // namespace
}  // namespace now::core
