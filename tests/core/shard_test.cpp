// Tests for the sharded batch engine (DESIGN.md §7): the single-shard
// equivalence guarantee (shard count never changes results, only wall
// clock), the per-shard OpReport accounting, and the conflict-dropping
// commit phase.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "core/now.hpp"

namespace now::core {
namespace {

NowParams shard_params() {
  NowParams p;
  p.max_size = 1 << 12;
  p.walk_mode = WalkMode::kSampleExact;
  // Tests below assert the compromise invariant after every batch; at the
  // default k = 3 a ~24-member cluster grazes 1/3 on unlucky seeds (the
  // finite-size whp caveat the thm3/remark tests document), so scale k the
  // way Lemma 1 prescribes.
  p.k = 10;
  p.tau = 0.10;
  return p;
}

/// Distinct live victims drawn with `rng`; identical state + identical rng
/// stream => identical victims, which the equivalence test relies on.
std::vector<NodeId> pick_victims(const NowSystem& system, std::size_t count,
                                 Rng& rng) {
  return system.state().sample_distinct_nodes(rng, count);
}

/// Sorted (cluster id, size) pairs — the full partition signature.
std::vector<std::pair<std::uint64_t, std::size_t>> partition_signature(
    const NowSystem& system) {
  std::vector<std::pair<std::uint64_t, std::size_t>> sig;
  for (const ClusterId id : system.state().cluster_ids()) {
    sig.emplace_back(id.value(), system.state().cluster_at(id).size());
  }
  std::sort(sig.begin(), sig.end());
  return sig;
}

TEST(ShardTest, ShardCountDoesNotChangeResults) {
  // Same seed, same batches: shards ∈ {1, 4, 8} must produce an IDENTICAL
  // partition — same cluster ids, same sizes, same node homes, same
  // Byzantine ground truth — with the parallel two-stage commit and the
  // wave scheduler engaged, because plans depend only on the start-of-step
  // snapshot and per-op/per-wave derived RNG streams, the wave list is
  // collected in canonical cluster order, and the commit resolves every
  // move in canonical order. Three seeds, mixed batches: joins, leaves and
  // a Byzantine fraction of the joiners in every round.
  for (const std::uint64_t seed : {11ull, 29ull, 47ull}) {
    constexpr std::size_t kShardAxis[] = {1, 4, 8};
    std::vector<std::unique_ptr<Metrics>> metrics;
    std::vector<std::unique_ptr<NowSystem>> systems;
    std::vector<Rng> victim_rngs;
    for (std::size_t v = 0; v < std::size(kShardAxis); ++v) {
      metrics.push_back(std::make_unique<Metrics>());
      systems.push_back(
          std::make_unique<NowSystem>(shard_params(), *metrics.back(), seed));
      systems.back()->initialize(1200, 120, InitTopology::kModeledSparse);
      victim_rngs.emplace_back(seed ^ 99);
    }

    for (int round = 0; round < 4; ++round) {
      // Mixed batch: 14 joins of which `round` are Byzantine, 10 leaves.
      const std::size_t byz_joins = static_cast<std::size_t>(round);
      std::vector<std::vector<NodeId>> joined(std::size(kShardAxis));
      std::vector<OpReport> reports(std::size(kShardAxis));
      for (std::size_t v = 0; v < std::size(kShardAxis); ++v) {
        const auto leaves = pick_victims(*systems[v], 10, victim_rngs[v]);
        std::tie(joined[v], reports[v]) = systems[v]->step_parallel_mixed(
            14, byz_joins, leaves, kShardAxis[v]);
      }
      for (std::size_t v = 1; v < std::size(kShardAxis); ++v) {
        ASSERT_EQ(joined[0], joined[v])
            << "seed " << seed << " round " << round << " shards "
            << kShardAxis[v];
        EXPECT_EQ(reports[0].splits, reports[v].splits);
        EXPECT_EQ(reports[0].merges, reports[v].merges);
        EXPECT_EQ(reports[0].conflicts, reports[v].conflicts);
        EXPECT_EQ(reports[0].wave_count, reports[v].wave_count);
        EXPECT_EQ(reports[0].cost.rounds, reports[v].cost.rounds);
      }
      EXPECT_GT(reports[0].wave_count, 0u);
    }

    for (std::size_t v = 1; v < std::size(kShardAxis); ++v) {
      EXPECT_EQ(systems[0]->num_nodes(), systems[v]->num_nodes());
      EXPECT_EQ(partition_signature(*systems[0]),
                partition_signature(*systems[v]));
      for (const NodeId node : systems[0]->state().live_nodes()) {
        ASSERT_EQ(systems[0]->state().home_of(node),
                  systems[v]->state().home_of(node))
            << "seed " << seed << " shards " << kShardAxis[v];
        EXPECT_EQ(systems[0]->state().byzantine.contains(node),
                  systems[v]->state().byzantine.contains(node));
      }
      EXPECT_EQ(systems[0]->state().byzantine.size(),
                systems[v]->state().byzantine.size());
      EXPECT_TRUE(systems[v]->check().ok);
    }
    EXPECT_TRUE(systems[0]->check().ok);
  }
}

TEST(ShardTest, WaveSchedulerRunsOneWavePerTouchedCluster) {
  // Several operations landing on one cluster must still produce at most
  // one primary wave per cluster; with a single-cluster partition there is
  // nobody to swap with, so an entire batch yields exactly one wave (the
  // target cluster's own, with zero swaps) — and never one per operation.
  NowParams p = shard_params();
  Metrics metrics;
  NowSystem system{p, metrics, 71};
  system.initialize(60, 0, InitTopology::kModeledSparse);
  ASSERT_EQ(system.num_clusters(), 1u);
  const auto [joined, report] = system.step_parallel_sharded(6, {}, false, 4);
  ASSERT_EQ(joined.size(), 6u);
  EXPECT_EQ(report.wave_count, 1u);  // 6 joins, one touched cluster
  EXPECT_EQ(report.conflicts, 0u);
  EXPECT_TRUE(system.check().ok);

  // In a multi-cluster deployment the wave count is bounded by the number
  // of live clusters (one wave per cluster per time step), even though the
  // sequential engine would run one exchange per join plus one per leave
  // partner — the O(partners x swaps) duplication the scheduler removes.
  Metrics big_metrics;
  NowSystem big{shard_params(), big_metrics, 73};
  big.initialize(1000, 0, InitTopology::kModeledSparse);
  Rng victims{5};
  const auto leaves = big.state().sample_distinct_nodes(victims, 12);
  const auto [j2, r2] = big.step_parallel_sharded(12, leaves, false, 4);
  EXPECT_GT(r2.wave_count, 0u);
  EXPECT_LE(r2.wave_count, big.num_clusters());
  EXPECT_TRUE(big.check().ok);
}

TEST(ShardTest, ClusterSizeMultisetMatchesAcrossShardCounts) {
  // The headline equivalence stated in DESIGN.md §7, on the multiset of
  // cluster sizes (id-agnostic) after a heavier mixed run.
  std::map<std::size_t, std::size_t> histogram[2];
  for (int variant = 0; variant < 2; ++variant) {
    Metrics metrics;
    NowSystem system{shard_params(), metrics, 23};
    system.initialize(900, 90, InitTopology::kModeledSparse);
    Rng victims{7};
    for (int round = 0; round < 6; ++round) {
      const auto leaves = pick_victims(system, 8, victims);
      system.step_parallel_sharded(8, leaves, false,
                                   variant == 0 ? 1 : 4);
    }
    for (const ClusterId id : system.state().cluster_ids()) {
      histogram[variant][system.state().cluster_at(id).size()] += 1;
    }
    EXPECT_TRUE(system.check().ok);
  }
  EXPECT_EQ(histogram[0], histogram[1]);
}

TEST(ShardTest, PerShardCostsMergeIntoReport) {
  Metrics metrics;
  NowSystem system{shard_params(), metrics, 31};
  system.initialize(1000, 100, InitTopology::kModeledSparse);
  Rng victims{3};
  const auto leaves = pick_victims(system, 9, victims);

  const auto joins_before = metrics.operation_count("join");
  const auto leaves_before = metrics.operation_count("leave");
  const auto [joined, report] =
      system.step_parallel_sharded(9, leaves, false, 3);
  ASSERT_EQ(joined.size(), 9u);

  // One planning-cost entry per shard; every planned message is accounted
  // exactly once: batch cost = sum of shard costs + the sequential commit.
  ASSERT_EQ(report.shard_costs.size(), 3u);
  std::uint64_t planned_messages = 0;
  for (const Cost& shard : report.shard_costs) {
    EXPECT_GT(shard.messages, 0u);
    planned_messages += shard.messages;
  }
  EXPECT_EQ(report.cost.messages,
            planned_messages + report.commit_cost.messages);

  // Per-operation samples from the shard-local Metrics instances were
  // merged back under the standard labels.
  EXPECT_EQ(metrics.operation_count("join"), joins_before + 9);
  EXPECT_EQ(metrics.operation_count("leave"), leaves_before + 9);

  // Rounds combine by max over the overlapped operations plus the deferred
  // commit restructuring — never the sum of all per-op rounds.
  const auto join_samples = metrics.operation_samples("join");
  std::uint64_t sum_rounds = 0;
  for (auto it = join_samples.end() - 9; it != join_samples.end(); ++it) {
    sum_rounds += it->rounds;
  }
  EXPECT_GT(report.cost.rounds, 0u);
  EXPECT_LT(report.cost.rounds, sum_rounds + report.commit_cost.rounds + 1);
}

TEST(ShardTest, ShardedBatchConservesNodesAndInvariants) {
  Metrics metrics;
  NowSystem system{shard_params(), metrics, 41};
  system.initialize(800, 120, InitTopology::kModeledSparse);
  Rng victims{13};
  std::size_t expected = 800;
  for (int round = 0; round < 5; ++round) {
    const auto leaves = pick_victims(system, 6, victims);
    const auto [joined, report] =
        system.step_parallel_sharded(11, leaves, false, 4);
    EXPECT_EQ(joined.size(), 11u);
    expected += 11 - 6;
    ASSERT_EQ(system.num_nodes(), expected);
    const auto inv = system.check();
    ASSERT_TRUE(inv.ok) << (inv.violations.empty() ? ""
                                                   : inv.violations[0]);
  }
}

TEST(ShardTest, LegacyPathIsUntouchedByDefault) {
  // step_parallel with shards<=1 must keep using the historical sequential
  // engine and the system RNG stream: identical to a plain join/leave loop.
  Metrics metrics_batch;
  Metrics metrics_loop;
  NowSystem batch{shard_params(), metrics_batch, 55};
  NowSystem loop{shard_params(), metrics_loop, 55};
  batch.initialize(600, 60, InitTopology::kModeledSparse);
  loop.initialize(600, 60, InitTopology::kModeledSparse);

  const auto [joined, report] = batch.step_parallel(5, {});
  (void)report;
  for (int i = 0; i < 5; ++i) loop.join(false);

  ASSERT_EQ(joined.size(), 5u);
  EXPECT_EQ(partition_signature(batch), partition_signature(loop));
}

}  // namespace
}  // namespace now::core
