// Nightly large-n stress of the plan-phase machinery (DESIGN.md §11): a
// million-node deployment churned through dirty-overlay batches, verifying
// after every batch that the incrementally maintained PlanCache (dense
// tables, neighborhood populations, alias dirty overlay) still matches a
// from-scratch rebuild, and that the epoch-stamped batch scratch keeps the
// state invariants intact at a scale the tier-1 suite never reaches.
//
// NOT part of the ctest tier-1 suite: the `_nightly.cpp` suffix escapes the
// `tests/**/*_test.cpp` glob; CMake builds it as `plan_cache_stress_nightly`
// (so it cannot rot) and .github/workflows/nightly.yml executes it.
#include <gtest/gtest.h>

#include <cstddef>

#include "core/now.hpp"

namespace now::core {
namespace {

TEST(PlanCacheStressNightly, MillionNodeChurnKeepsCacheConsistent) {
  NowParams params;
  params.max_size = 1 << 14;
  params.walk_mode = WalkMode::kSampleExact;
  params.k = 10;
  params.tau = 0.05;
  Metrics metrics;
  NowSystem system(params, metrics, 20240808);
  constexpr std::size_t kN = 1000000;
  system.initialize(kN, kN / 20, InitTopology::kModeledSparse);
  ASSERT_TRUE(system.check().ok);

  // Size-neutral churn keeps the batches structure-preserving most of the
  // time, so the alias sampler's dirty overlay absorbs thousands of
  // per-slot deltas between rebuilds — the exact path the incremental
  // maintenance must keep exact.
  Rng victim_rng{4242};
  constexpr std::size_t kBatches = 12;
  constexpr std::size_t kOps = 5000;
  for (std::size_t b = 0; b < kBatches; ++b) {
    const auto leaves =
        system.state().sample_distinct_nodes(victim_rng, kOps);
    const auto [joined, report] =
        system.step_parallel_mixed(kOps, kOps / 50, leaves, 8);
    ASSERT_EQ(joined.size(), kOps);
    ASSERT_TRUE(system.plan_cache_consistent())
        << "batch " << b << ": incremental PlanCache drifted from rebuild";
    EXPECT_GT(report.wave_count, 0u);
  }
  const InvariantReport report = system.check();
  ASSERT_TRUE(report.ok);
  EXPECT_EQ(system.num_nodes(), kN);

  // Memory stays linear with small constants at this scale: the footprint
  // scalar BENCH_micro tracks must not silently regress superlinear.
  const double bytes_per_node =
      static_cast<double>(system.footprint_bytes()) /
      static_cast<double>(system.num_nodes());
  EXPECT_LT(bytes_per_node, 256.0);
}

}  // namespace
}  // namespace now::core
