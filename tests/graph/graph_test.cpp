#include "graph/graph.hpp"

#include <algorithm>

#include <gtest/gtest.h>

namespace now::graph {
namespace {

TEST(GraphTest, AddRemoveVertex) {
  Graph g;
  EXPECT_TRUE(g.add_vertex(1));
  EXPECT_FALSE(g.add_vertex(1));
  EXPECT_TRUE(g.has_vertex(1));
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_TRUE(g.remove_vertex(1));
  EXPECT_FALSE(g.remove_vertex(1));
  EXPECT_EQ(g.num_vertices(), 0u);
}

TEST(GraphTest, AddRemoveEdge) {
  Graph g;
  g.add_vertex(1);
  g.add_vertex(2);
  EXPECT_TRUE(g.add_edge(1, 2));
  EXPECT_FALSE(g.add_edge(1, 2));  // duplicate
  EXPECT_FALSE(g.add_edge(2, 1));  // same edge, other direction
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.remove_edge(2, 1));
  EXPECT_FALSE(g.remove_edge(1, 2));
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphTest, RemoveVertexCleansIncidentEdges) {
  Graph g;
  for (Vertex v : {1u, 2u, 3u, 4u}) g.add_vertex(v);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.remove_vertex(1);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_EQ(g.degree(3), 1u);
}

TEST(GraphTest, NeighborsAreSorted) {
  Graph g;
  for (Vertex v : {5u, 1u, 9u, 3u}) g.add_vertex(v);
  g.add_edge(5, 9);
  g.add_edge(5, 1);
  g.add_edge(5, 3);
  const auto& nbrs = g.neighbors(5);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 3u);
}

TEST(GraphTest, DegreeBounds) {
  Graph g;
  for (Vertex v : {1u, 2u, 3u}) g.add_vertex(v);
  g.add_edge(1, 2);
  EXPECT_EQ(g.max_degree(), 1u);
  EXPECT_EQ(g.min_degree(), 0u);  // vertex 3 isolated
  g.add_edge(1, 3);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_EQ(g.min_degree(), 1u);
}

TEST(GraphTest, VerticesSortedAscending) {
  Graph g;
  for (Vertex v : {42u, 7u, 19u}) g.add_vertex(v);
  const auto verts = g.vertices();
  EXPECT_TRUE(std::is_sorted(verts.begin(), verts.end()));
  EXPECT_EQ(verts.size(), 3u);
}

TEST(GraphTest, RandomNeighborIsANeighbor) {
  Graph g;
  for (Vertex v : {1u, 2u, 3u, 4u}) g.add_vertex(v);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  Rng rng{99};
  for (int i = 0; i < 50; ++i) {
    const Vertex u = g.random_neighbor(1, rng);
    EXPECT_TRUE(u == 2 || u == 3);
  }
}

TEST(GraphTest, RandomVertexCoversAll) {
  Graph g;
  for (Vertex v : {1u, 2u, 3u}) g.add_vertex(v);
  Rng rng{5};
  std::set<Vertex> seen;
  for (int i = 0; i < 200; ++i) seen.insert(g.random_vertex(rng));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(GraphTest, EdgeCountConsistentUnderRandomOps) {
  Graph g;
  Rng rng{123};
  constexpr std::size_t kVerts = 30;
  for (Vertex v = 0; v < kVerts; ++v) g.add_vertex(v);
  std::size_t edges = 0;
  for (int i = 0; i < 2000; ++i) {
    const Vertex u = rng.uniform(kVerts);
    const Vertex v = rng.uniform(kVerts);
    if (u == v) continue;
    if (g.has_edge(u, v)) {
      g.remove_edge(u, v);
      --edges;
    } else {
      g.add_edge(u, v);
      ++edges;
    }
    ASSERT_EQ(g.num_edges(), edges);
  }
  // Handshake lemma.
  std::size_t degree_sum = 0;
  for (const Vertex v : g.vertices()) degree_sum += g.degree(v);
  EXPECT_EQ(degree_sum, 2 * g.num_edges());
}

}  // namespace
}  // namespace now::graph
