#include "graph/spectral.hpp"

#include <gtest/gtest.h>

#include "graph/erdos_renyi.hpp"
#include "graph/isoperimetric.hpp"

namespace now::graph {
namespace {

Graph complete_graph(std::size_t n) {
  Graph g;
  for (Vertex v = 0; v < n; ++v) g.add_vertex(v);
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = u + 1; v < n; ++v) g.add_edge(u, v);
  return g;
}

Graph cycle_graph(std::size_t n) {
  Graph g;
  for (Vertex v = 0; v < n; ++v) g.add_vertex(v);
  for (Vertex v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  g.add_edge(0, n - 1);
  return g;
}

TEST(SpectralTest, CompleteGraphHasLargeGap) {
  // Walk matrix of K_n has lambda2 = -1/(n-1): the gap is ~1.
  Rng rng{1};
  const auto est = estimate_expansion(complete_graph(10), rng);
  EXPECT_GT(est.spectral_gap, 0.9);
  EXPECT_GT(est.conductance_lower, 0.4);
}

TEST(SpectralTest, LongCycleHasTinyGap) {
  Rng rng{2};
  const auto est = estimate_expansion(cycle_graph(40), rng, 2000);
  // lambda2 = cos(2*pi/40) ~ 0.9877.
  EXPECT_NEAR(est.lambda2, 0.9877, 0.01);
  EXPECT_LT(est.spectral_gap, 0.05);
}

TEST(SpectralTest, CheegerSandwichOnSmallRandomGraphs) {
  // conductance_lower <= exact I(G)/d_max ... more precisely:
  //   edge_expansion_lower <= I(G) <= sweep_edge_expansion.
  Rng rng{3};
  for (int trial = 0; trial < 10; ++trial) {
    Graph g;
    std::vector<Vertex> verts;
    for (Vertex v = 0; v < 12; ++v) verts.push_back(v);
    generate_erdos_renyi(g, verts, 0.5, rng);
    if (g.min_degree() == 0) continue;
    const double exact = exact_isoperimetric_constant(g);
    if (exact == 0.0) continue;  // disconnected sample
    Rng est_rng{static_cast<std::uint64_t>(trial) + 100};
    const auto est = estimate_expansion(g, est_rng, 800);
    EXPECT_LE(est.edge_expansion_lower, exact + 1e-6) << "trial " << trial;
    EXPECT_GE(est.sweep_edge_expansion, exact - 1e-6) << "trial " << trial;
  }
}

TEST(SpectralTest, SweepConductanceBoundsTrueConductance) {
  // On a barbell (two cliques + bridge) the sweep cut should find the
  // bottleneck: conductance ~ 1 / (2 * E(clique)).
  Graph g;
  for (Vertex v = 0; v < 12; ++v) g.add_vertex(v);
  for (Vertex u = 0; u < 6; ++u)
    for (Vertex v = u + 1; v < 6; ++v) g.add_edge(u, v);
  for (Vertex u = 6; u < 12; ++u)
    for (Vertex v = u + 1; v < 12; ++v) g.add_edge(u, v);
  g.add_edge(0, 6);
  Rng rng{4};
  const auto est = estimate_expansion(g, rng, 2000);
  // vol(half) = 2*15 + 1 = 31, cut = 1.
  EXPECT_NEAR(est.sweep_conductance, 1.0 / 31.0, 1e-6);
  EXPECT_LE(est.conductance_lower, 1.0 / 31.0 + 1e-6);
}

TEST(SpectralTest, IsolatedVertexReportsZeroExpansion) {
  Graph g;
  g.add_vertex(0);
  g.add_vertex(1);
  g.add_vertex(2);
  g.add_edge(0, 1);
  Rng rng{5};
  const auto est = estimate_expansion(g, rng);
  EXPECT_DOUBLE_EQ(est.spectral_gap, 0.0);
}

TEST(SpectralTest, ExpanderBeatsCycleAtSameSize) {
  Rng rng{6};
  Graph expander;
  std::vector<Vertex> verts;
  for (Vertex v = 0; v < 40; ++v) verts.push_back(v);
  generate_erdos_renyi(expander, verts, 0.25, rng);
  if (expander.min_degree() == 0) GTEST_SKIP();
  Rng r1{7};
  Rng r2{8};
  const auto er = estimate_expansion(expander, r1, 800);
  const auto cy = estimate_expansion(cycle_graph(40), r2, 800);
  EXPECT_GT(er.spectral_gap, cy.spectral_gap * 3);
}

}  // namespace
}  // namespace now::graph
