#include "graph/mixing.hpp"

#include <gtest/gtest.h>

#include "graph/erdos_renyi.hpp"
#include "graph/random_walk.hpp"

namespace now::graph {
namespace {

Graph cycle_graph(std::size_t n) {
  Graph g;
  for (Vertex v = 0; v < n; ++v) g.add_vertex(v);
  for (Vertex v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  g.add_edge(0, n - 1);
  return g;
}

Graph complete_graph(std::size_t n) {
  Graph g;
  for (Vertex v = 0; v < n; ++v) g.add_vertex(v);
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = u + 1; v < n; ++v) g.add_edge(u, v);
  return g;
}

TEST(MixingTest, SpectralBoundDominatesEmpiricalTime) {
  // The t_mix upper bound must sit above the exact mixing time.
  Rng rng{1};
  for (int trial = 0; trial < 5; ++trial) {
    Graph g;
    std::vector<Vertex> verts;
    for (Vertex v = 0; v < 14; ++v) verts.push_back(v);
    generate_erdos_renyi(g, verts, 0.45, rng);
    if (g.min_degree() == 0) continue;
    Rng est_rng{static_cast<std::uint64_t>(trial) + 10};
    const auto est = estimate_mixing(g, est_rng, 1e-3);
    if (est.generator_gap <= 0.0) continue;
    const double exact = empirical_mixing_time(g, 1e-3);
    EXPECT_GE(est.t_mix_bound, exact * 0.9) << "trial " << trial;
  }
}

TEST(MixingTest, CompleteGraphMixesFasterThanCycle) {
  const double fast = empirical_mixing_time(complete_graph(12), 1e-3);
  const double slow = empirical_mixing_time(cycle_graph(12), 1e-3);
  EXPECT_LT(fast * 3, slow);
}

TEST(MixingTest, EmpiricalTimeActuallyMixes) {
  const Graph g = cycle_graph(10);
  const double t = empirical_mixing_time(g, 1e-3);
  for (const Vertex v : g.vertices()) {
    EXPECT_LE(tv_distance_from_uniform(g, ctrw_distribution(g, v, t)),
              1e-3 + 1e-9);
  }
  // Just below the mixing time, some start is NOT yet mixed.
  double worst = 0.0;
  for (const Vertex v : g.vertices()) {
    worst = std::max(worst, tv_distance_from_uniform(
                                g, ctrw_distribution(g, v, t * 0.8)));
  }
  EXPECT_GT(worst, 1e-3);
}

TEST(MixingTest, ExpanderHopsAreLogarithmic) {
  // On an ER expander the expected hops to mix should be O(log n) — far
  // below n. This is the fact that makes randCl cheap.
  Rng rng{3};
  Graph g;
  std::vector<Vertex> verts;
  for (Vertex v = 0; v < 60; ++v) verts.push_back(v);
  generate_erdos_renyi(g, verts, 0.2, rng);
  if (g.min_degree() == 0) GTEST_SKIP();
  Rng est_rng{4};
  const auto est = estimate_mixing(g, est_rng, 1e-3);
  ASSERT_GT(est.generator_gap, 0.0);
  EXPECT_LT(est.expected_hops, 60.0);  // << n would be the slow regime
}

}  // namespace
}  // namespace now::graph
