#include "graph/isoperimetric.hpp"

#include <gtest/gtest.h>

namespace now::graph {
namespace {

Graph complete_graph(std::size_t n) {
  Graph g;
  for (Vertex v = 0; v < n; ++v) g.add_vertex(v);
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = u + 1; v < n; ++v) g.add_edge(u, v);
  return g;
}

Graph cycle_graph(std::size_t n) {
  Graph g;
  for (Vertex v = 0; v < n; ++v) g.add_vertex(v);
  for (Vertex v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  g.add_edge(0, n - 1);
  return g;
}

Graph path_graph(std::size_t n) {
  Graph g;
  for (Vertex v = 0; v < n; ++v) g.add_vertex(v);
  for (Vertex v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

TEST(IsoperimetricTest, CompleteGraph) {
  // K_n: any |S| = k cut has k(n-k) edges; min over k <= n/2 of (n-k) is
  // n - floor(n/2) = ceil(n/2).
  EXPECT_DOUBLE_EQ(exact_isoperimetric_constant(complete_graph(4)), 2.0);
}

TEST(IsoperimetricTest, CompleteGraphOdd) {
  EXPECT_DOUBLE_EQ(exact_isoperimetric_constant(complete_graph(5)), 3.0);
}

TEST(IsoperimetricTest, CycleGraph) {
  // C_n: best cut is a contiguous arc of n/2 vertices: 2 edges / (n/2).
  EXPECT_DOUBLE_EQ(exact_isoperimetric_constant(cycle_graph(6)), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(exact_isoperimetric_constant(cycle_graph(8)), 0.5);
}

TEST(IsoperimetricTest, PathGraph) {
  // P_n: cut one end half: 1 edge / (n/2).
  EXPECT_DOUBLE_EQ(exact_isoperimetric_constant(path_graph(8)), 0.25);
}

TEST(IsoperimetricTest, DisconnectedIsZero) {
  Graph g = path_graph(3);
  g.add_vertex(10);
  EXPECT_DOUBLE_EQ(exact_isoperimetric_constant(g), 0.0);
}

TEST(IsoperimetricTest, StarGraph) {
  // Star K_{1,5}: best is any leaf set of size 3: 3 edges / 3 = 1.
  Graph g;
  for (Vertex v = 0; v <= 5; ++v) g.add_vertex(v);
  for (Vertex v = 1; v <= 5; ++v) g.add_edge(0, v);
  EXPECT_DOUBLE_EQ(exact_isoperimetric_constant(g), 1.0);
}

}  // namespace
}  // namespace now::graph
