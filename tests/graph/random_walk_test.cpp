#include "graph/random_walk.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "graph/erdos_renyi.hpp"

namespace now::graph {
namespace {

/// An intentionally irregular graph: a star glued to a triangle.
Graph irregular_graph() {
  Graph g;
  for (Vertex v = 0; v < 7; ++v) g.add_vertex(v);
  // star center 0 with leaves 1..3
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  // triangle 4,5,6 hooked to the star
  g.add_edge(4, 5);
  g.add_edge(5, 6);
  g.add_edge(4, 6);
  g.add_edge(3, 4);
  return g;
}

TEST(CtrwTest, StationaryDistributionIsUniformEvenOnIrregularGraphs) {
  // The paper picks CTRWs precisely because their stationary law is uniform
  // over vertices regardless of degrees (Section 1, Aldous–Fill [1]).
  const Graph g = irregular_graph();
  const auto dist = ctrw_distribution(g, 0, /*t=*/60.0);
  const double uniform = 1.0 / 7.0;
  for (const auto& [v, p] : dist) EXPECT_NEAR(p, uniform, 1e-6) << v;
  EXPECT_LT(tv_distance_from_uniform(g, dist), 1e-6);
}

TEST(CtrwTest, DistributionSumsToOne) {
  const Graph g = irregular_graph();
  for (const double t : {0.1, 1.0, 5.0}) {
    const auto dist = ctrw_distribution(g, 2, t);
    double sum = 0;
    for (const auto& [v, p] : dist) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9) << "t=" << t;
  }
}

TEST(CtrwTest, TvDistanceDecreasesWithTime) {
  const Graph g = irregular_graph();
  double prev = 1.0;
  for (const double t : {0.5, 2.0, 8.0, 32.0, 64.0}) {
    const double tv = tv_distance_from_uniform(g, ctrw_distribution(g, 1, t));
    EXPECT_LE(tv, prev + 1e-9);
    prev = tv;
  }
  EXPECT_LT(prev, 1e-4);
}

TEST(CtrwTest, SimulatedEndpointsMatchExactDistribution) {
  const Graph g = irregular_graph();
  const double t = 3.0;  // not yet mixed: distribution is nontrivial
  const auto exact = ctrw_distribution(g, 0, t);

  Rng rng{77};
  constexpr std::size_t kTrials = 40000;
  std::map<Vertex, std::uint64_t> counts;
  for (std::size_t i = 0; i < kTrials; ++i) {
    counts[ctrw_walk(g, 0, t, rng).endpoint]++;
  }
  std::vector<std::uint64_t> observed;
  std::vector<double> probs;
  for (const Vertex v : g.vertices()) {
    observed.push_back(counts[v]);
    probs.push_back(exact.at(v));
  }
  const double stat = chi_square_statistic(observed, probs);
  EXPECT_GT(chi_square_p_value(stat, observed.size() - 1), 1e-4);
}

TEST(CtrwTest, ZeroDurationStaysPut) {
  const Graph g = irregular_graph();
  Rng rng{3};
  const auto r = ctrw_walk(g, 5, 0.0, rng);
  EXPECT_EQ(r.endpoint, 5u);
  EXPECT_EQ(r.hops, 0u);
}

TEST(CtrwTest, HopsGrowWithDuration) {
  const Graph g = irregular_graph();
  Rng rng{4};
  RunningStat short_hops;
  RunningStat long_hops;
  for (int i = 0; i < 300; ++i) {
    short_hops.add(static_cast<double>(ctrw_walk(g, 0, 1.0, rng).hops));
    long_hops.add(static_cast<double>(ctrw_walk(g, 0, 10.0, rng).hops));
  }
  EXPECT_GT(long_hops.mean(), 5 * short_hops.mean());
}

TEST(DiscreteWalkTest, StaysOnGraph) {
  const Graph g = irregular_graph();
  Rng rng{5};
  for (int i = 0; i < 100; ++i) {
    const Vertex v = discrete_walk(g, 0, 10, rng);
    EXPECT_TRUE(g.has_vertex(v));
  }
}

TEST(DiscreteWalkTest, ZeroStepsIsIdentity) {
  const Graph g = irregular_graph();
  Rng rng{6};
  EXPECT_EQ(discrete_walk(g, 6, 0, rng), 6u);
}

TEST(CtrwTest, UniformityHoldsOnRandomGraphs) {
  Rng gen{8};
  std::vector<Vertex> verts;
  for (Vertex v = 0; v < 25; ++v) verts.push_back(v);
  Graph g;
  generate_erdos_renyi(g, verts, 0.3, gen);
  if (g.min_degree() == 0) GTEST_SKIP();
  const auto dist = ctrw_distribution(g, 3, 40.0);
  EXPECT_LT(tv_distance_from_uniform(g, dist), 1e-4);
}

}  // namespace
}  // namespace now::graph
