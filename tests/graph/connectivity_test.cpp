#include "graph/connectivity.hpp"

#include <limits>

#include <gtest/gtest.h>

namespace now::graph {
namespace {

Graph path_graph(std::size_t n) {
  Graph g;
  for (Vertex v = 0; v < n; ++v) g.add_vertex(v);
  for (Vertex v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph cycle_graph(std::size_t n) {
  Graph g = path_graph(n);
  g.add_edge(0, n - 1);
  return g;
}

Graph complete_graph(std::size_t n) {
  Graph g;
  for (Vertex v = 0; v < n; ++v) g.add_vertex(v);
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = u + 1; v < n; ++v) g.add_edge(u, v);
  return g;
}

TEST(ConnectivityTest, SingleComponent) {
  const Graph g = path_graph(5);
  const auto comps = connected_components(g);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].size(), 5u);
  EXPECT_TRUE(is_connected(g));
}

TEST(ConnectivityTest, TwoComponents) {
  Graph g = path_graph(4);
  g.add_vertex(100);
  g.add_vertex(101);
  g.add_edge(100, 101);
  const auto comps = connected_components(g);
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0].size(), 4u);
  EXPECT_EQ(comps[1].size(), 2u);
  EXPECT_FALSE(is_connected(g));
}

TEST(ConnectivityTest, EmptyGraphIsConnected) {
  EXPECT_TRUE(is_connected(Graph{}));
}

TEST(ConnectivityTest, BfsDistancesOnPath) {
  const Graph g = path_graph(6);
  const auto dist = bfs_distances(g, 0);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(dist.at(v), v);
}

TEST(ConnectivityTest, BfsSkipsUnreachable) {
  Graph g = path_graph(3);
  g.add_vertex(50);
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist.size(), 3u);
  EXPECT_FALSE(dist.contains(50));
}

TEST(DiameterTest, KnownDiameters) {
  EXPECT_EQ(diameter(path_graph(7)), 6u);
  EXPECT_EQ(diameter(cycle_graph(8)), 4u);
  EXPECT_EQ(diameter(complete_graph(5)), 1u);
}

TEST(DiameterTest, DisconnectedIsInfinite) {
  Graph g = path_graph(3);
  g.add_vertex(50);
  EXPECT_EQ(diameter(g), std::numeric_limits<std::size_t>::max());
}

}  // namespace
}  // namespace now::graph
