#include "graph/erdos_renyi.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace now::graph {
namespace {

std::vector<Vertex> make_vertices(std::size_t n) {
  std::vector<Vertex> verts(n);
  for (std::size_t i = 0; i < n; ++i) verts[i] = i;
  return verts;
}

TEST(ErdosRenyiTest, ZeroProbabilityGivesNoEdges) {
  Graph g;
  Rng rng{1};
  const auto verts = make_vertices(20);
  generate_erdos_renyi(g, verts, 0.0, rng);
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(ErdosRenyiTest, UnitProbabilityGivesCompleteGraph) {
  Graph g;
  Rng rng{2};
  const auto verts = make_vertices(12);
  generate_erdos_renyi(g, verts, 1.0, rng);
  EXPECT_EQ(g.num_edges(), 12u * 11 / 2);
}

TEST(ErdosRenyiTest, EdgeCountConcentratesAroundExpectation) {
  Rng rng{3};
  const auto verts = make_vertices(200);
  const double p = 0.1;
  const double expected = p * 200 * 199 / 2.0;
  double total = 0;
  constexpr int kRuns = 20;
  for (int run = 0; run < kRuns; ++run) {
    Graph g;
    generate_erdos_renyi(g, verts, p, rng);
    total += static_cast<double>(g.num_edges());
  }
  const double mean = total / kRuns;
  EXPECT_NEAR(mean, expected, expected * 0.05);
}

TEST(ErdosRenyiTest, SmallAndDegenerateInputs) {
  Rng rng{4};
  Graph g0;
  generate_erdos_renyi(g0, {}, 0.5, rng);
  EXPECT_EQ(g0.num_vertices(), 0u);

  Graph g1;
  const std::vector<Vertex> one{7};
  generate_erdos_renyi(g1, one, 0.5, rng);
  EXPECT_EQ(g1.num_vertices(), 1u);
  EXPECT_EQ(g1.num_edges(), 0u);
}

TEST(ErdosRenyiTest, PairInclusionIsUnbiased) {
  // Each specific pair should appear with probability ~ p.
  Rng rng{5};
  const auto verts = make_vertices(10);
  const double p = 0.3;
  constexpr int kRuns = 5000;
  int hits_01 = 0;
  int hits_89 = 0;
  for (int run = 0; run < kRuns; ++run) {
    Graph g;
    generate_erdos_renyi(g, verts, p, rng);
    hits_01 += g.has_edge(0, 1) ? 1 : 0;
    hits_89 += g.has_edge(8, 9) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits_01) / kRuns, p, 0.03);
  EXPECT_NEAR(static_cast<double>(hits_89) / kRuns, p, 0.03);
}

}  // namespace
}  // namespace now::graph
