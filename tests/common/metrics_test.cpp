#include "common/metrics.hpp"

#include <gtest/gtest.h>

namespace now {
namespace {

TEST(MetricsTest, TotalsAccumulate) {
  Metrics m;
  m.add_messages(10);
  m.add_rounds(2);
  m.add_messages(5);
  EXPECT_EQ(m.total().messages, 15u);
  EXPECT_EQ(m.total().rounds, 2u);
}

TEST(MetricsTest, ScopeAttributesCosts) {
  Metrics m;
  {
    OpScope scope(m, "join");
    m.add_messages(7);
    m.add_rounds(3);
    EXPECT_EQ(scope.cost().messages, 7u);
    EXPECT_EQ(scope.cost().rounds, 3u);
  }
  EXPECT_EQ(m.operation_count(m.find("join")), 1u);
  EXPECT_EQ(m.operation_total(m.find("join")).messages, 7u);
  EXPECT_EQ(m.operation_total(m.find("join")).rounds, 3u);
}

TEST(MetricsTest, NestedScopesChargeAncestors) {
  Metrics m;
  {
    OpScope outer(m, "leave");
    m.add_messages(1);
    {
      OpScope inner(m, "exchange");
      m.add_messages(10);
    }
    EXPECT_EQ(outer.cost().messages, 11u);
  }
  EXPECT_EQ(m.operation_total(m.find("leave")).messages, 11u);
  EXPECT_EQ(m.operation_total(m.find("exchange")).messages, 10u);
  EXPECT_EQ(m.total().messages, 11u);  // global total counted once
}

TEST(MetricsTest, SamplesKeepPerOperationCosts) {
  Metrics m;
  for (int i = 1; i <= 3; ++i) {
    OpScope scope(m, "op");
    m.add_messages(static_cast<std::uint64_t>(i));
  }
  const auto samples = m.operation_samples(m.find("op"));
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].messages, 1u);
  EXPECT_EQ(samples[1].messages, 2u);
  EXPECT_EQ(samples[2].messages, 3u);
}

TEST(MetricsTest, UnknownLabelIsEmpty) {
  Metrics m;
  EXPECT_EQ(m.operation_count(m.find("nope")), 0u);
  EXPECT_EQ(m.operation_total(m.find("nope")), Cost{});
  EXPECT_TRUE(m.operation_samples(m.find("nope")).empty());
}

TEST(MetricsTest, LabelsAreSorted) {
  Metrics m;
  { OpScope s(m, "b"); }
  { OpScope s(m, "a"); }
  const auto labels = m.labels();
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0], "a");
  EXPECT_EQ(labels[1], "b");
}

TEST(MetricsTest, ResetClearsEverything) {
  Metrics m;
  { OpScope s(m, "x"); m.add_messages(4); }
  m.reset();
  EXPECT_EQ(m.total().messages, 0u);
  EXPECT_EQ(m.operation_count(m.find("x")), 0u);
}

TEST(MetricsInternTest, FindResolvesInternedLabelsOnly) {
  Metrics m;
  const OperationId join = m.intern("join");
  EXPECT_EQ(m.find("join"), join);
  EXPECT_EQ(m.find("never-interned"), kNoOperation);
  EXPECT_EQ(m.label_of(join), "join");
  EXPECT_EQ(m.label_of(kNoOperation), "");
  // The sentinel routes through every accessor as "no such operation".
  EXPECT_EQ(m.operation_count(kNoOperation), 0u);
  EXPECT_EQ(m.operation_total(kNoOperation), Cost{});
  EXPECT_TRUE(m.operation_samples(kNoOperation).empty());
}

TEST(MetricsInternTest, SameLabelAlwaysGetsSameId) {
  Metrics m;
  const OperationId join = m.intern("join");
  const OperationId leave = m.intern("leave");
  EXPECT_NE(join, leave);
  EXPECT_EQ(m.intern("join"), join);
  EXPECT_EQ(m.intern(std::string("join")), join);  // no literal aliasing
  m.reset();
  EXPECT_EQ(m.intern("join"), join);  // ids survive reset
}

TEST(MetricsInternTest, DeeplyNestedScopesAttributeToEveryAncestor) {
  // The join -> exchange -> randCl nesting of the real protocol, with the
  // same label re-entered at two different depths (rejoin inside merge).
  Metrics m;
  {
    OpScope join(m, "join");
    m.add_messages(1);
    {
      OpScope exchange(m, "exchange");
      m.add_messages(10);
      {
        OpScope randcl(m, "randcl");
        m.add_messages(100);
        m.add_rounds(2);
      }
      {
        OpScope randcl(m, "randcl");
        m.add_messages(100);
      }
      EXPECT_EQ(exchange.cost().messages, 210u);
    }
    EXPECT_EQ(join.cost().messages, 211u);
  }
  EXPECT_EQ(m.operation_count(m.find("randcl")), 2u);
  EXPECT_EQ(m.operation_total(m.find("randcl")).messages, 200u);
  EXPECT_EQ(m.operation_total(m.find("exchange")).messages, 210u);
  EXPECT_EQ(m.operation_total(m.find("join")).messages, 211u);
  EXPECT_EQ(m.operation_total(m.find("join")).rounds, 2u);
  EXPECT_EQ(m.total().messages, 211u);  // global total counted once

  // Same label nested inside a *different* operation accumulates into the
  // same interned bucket.
  {
    OpScope merge(m, "merge");
    OpScope rejoin(m, "join");
    m.add_messages(5);
  }
  EXPECT_EQ(m.operation_count(m.find("join")), 2u);
  EXPECT_EQ(m.operation_total(m.find("join")).messages, 216u);
  EXPECT_EQ(m.operation_total(m.find("merge")).messages, 5u);
}

TEST(MetricsInternTest, LabelsReflectOnlyCompletedOperations) {
  Metrics m;
  m.intern("never-run");  // interned but never completed
  { OpScope s(m, "ran"); }
  const auto labels = m.labels();
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0], "ran");
}

TEST(MetricsMergeTest, MergeFoldsTotalsAndSamples) {
  Metrics shard;
  {
    OpScope s(shard, "join");
    shard.add_messages(40);
    shard.add_rounds(4);
  }
  {
    OpScope s(shard, "exchange");
    shard.add_messages(2);
  }

  Metrics main;
  { OpScope s(main, "join"); main.add_messages(1); }
  {
    OpScope batch(main, "batch");
    main.merge(shard);
    // The merged total is charged into the open scope...
    EXPECT_EQ(batch.cost().messages, 42u);
    EXPECT_EQ(batch.cost().rounds, 4u);
  }
  // ... and the shard's completed samples land under the same labels,
  // after the samples main already had.
  EXPECT_EQ(main.operation_count(main.find("join")), 2u);
  EXPECT_EQ(main.operation_count(main.find("exchange")), 1u);
  EXPECT_EQ(main.operation_total(main.find("join")).messages, 41u);
  EXPECT_EQ(main.total().messages, 43u);
  EXPECT_EQ(main.total().rounds, 4u);
}

TEST(CostTest, Arithmetic) {
  const Cost a{3, 1};
  const Cost b{4, 2};
  const Cost c = a + b;
  EXPECT_EQ(c.messages, 7u);
  EXPECT_EQ(c.rounds, 3u);
  EXPECT_EQ(a, (Cost{3, 1}));
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace now
