#include "common/fenwick.hpp"

#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace now {
namespace {

TEST(FenwickTest, PrefixSumsMatchNaive) {
  FenwickTree tree;
  tree.resize(10);
  const std::vector<std::uint64_t> values = {3, 0, 7, 1, 0, 4, 2, 9, 0, 5};
  for (std::size_t i = 0; i < values.size(); ++i) tree.add(i, values[i]);

  std::uint64_t running = 0;
  for (std::size_t i = 0; i <= values.size(); ++i) {
    EXPECT_EQ(tree.prefix_sum(i), running) << "prefix " << i;
    if (i < values.size()) running += values[i];
  }
  EXPECT_EQ(tree.total(),
            std::accumulate(values.begin(), values.end(), std::uint64_t{0}));
}

TEST(FenwickTest, FindInvertsPrefixSums) {
  FenwickTree tree;
  tree.resize(6);
  const std::vector<std::uint64_t> values = {2, 0, 5, 1, 0, 3};
  for (std::size_t i = 0; i < values.size(); ++i) tree.add(i, values[i]);

  // Every target in [0, total) must land in the slot covering it; zero-size
  // slots are never returned.
  std::vector<std::size_t> expected;
  for (std::size_t i = 0; i < values.size(); ++i) {
    for (std::uint64_t j = 0; j < values[i]; ++j) expected.push_back(i);
  }
  ASSERT_EQ(expected.size(), tree.total());
  for (std::uint64_t target = 0; target < tree.total(); ++target) {
    EXPECT_EQ(tree.find(target), expected[target]) << "target " << target;
  }
}

TEST(FenwickTest, SubtractAndReuse) {
  FenwickTree tree;
  tree.resize(4);
  tree.add(0, 10);
  tree.add(2, 4);
  tree.subtract(0, 10);
  EXPECT_EQ(tree.total(), 4u);
  EXPECT_EQ(tree.value_at(0), 0u);
  for (std::uint64_t t = 0; t < 4; ++t) EXPECT_EQ(tree.find(t), 2u);
  tree.add(0, 1);
  EXPECT_EQ(tree.find(0), 0u);
}

TEST(FenwickTest, ResizePreservesValues) {
  FenwickTree tree;
  tree.resize(3);
  tree.add(0, 5);
  tree.add(2, 2);
  tree.resize(50);
  EXPECT_EQ(tree.total(), 7u);
  EXPECT_EQ(tree.prefix_sum(3), 7u);
  tree.add(40, 1);
  EXPECT_EQ(tree.total(), 8u);
  EXPECT_EQ(tree.find(7), 40u);
}

}  // namespace
}  // namespace now
