#include "common/fenwick.hpp"

#include <numeric>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace now {
namespace {

TEST(FenwickTest, PrefixSumsMatchNaive) {
  FenwickTree tree;
  tree.resize(10);
  const std::vector<std::uint64_t> values = {3, 0, 7, 1, 0, 4, 2, 9, 0, 5};
  for (std::size_t i = 0; i < values.size(); ++i) tree.add(i, values[i]);

  std::uint64_t running = 0;
  for (std::size_t i = 0; i <= values.size(); ++i) {
    EXPECT_EQ(tree.prefix_sum(i), running) << "prefix " << i;
    if (i < values.size()) running += values[i];
  }
  EXPECT_EQ(tree.total(),
            std::accumulate(values.begin(), values.end(), std::uint64_t{0}));
}

TEST(FenwickTest, FindInvertsPrefixSums) {
  FenwickTree tree;
  tree.resize(6);
  const std::vector<std::uint64_t> values = {2, 0, 5, 1, 0, 3};
  for (std::size_t i = 0; i < values.size(); ++i) tree.add(i, values[i]);

  // Every target in [0, total) must land in the slot covering it; zero-size
  // slots are never returned.
  std::vector<std::size_t> expected;
  for (std::size_t i = 0; i < values.size(); ++i) {
    for (std::uint64_t j = 0; j < values[i]; ++j) expected.push_back(i);
  }
  ASSERT_EQ(expected.size(), tree.total());
  for (std::uint64_t target = 0; target < tree.total(); ++target) {
    EXPECT_EQ(tree.find(target), expected[target]) << "target " << target;
  }
}

TEST(FenwickTest, SubtractAndReuse) {
  FenwickTree tree;
  tree.resize(4);
  tree.add(0, 10);
  tree.add(2, 4);
  tree.subtract(0, 10);
  EXPECT_EQ(tree.total(), 4u);
  EXPECT_EQ(tree.value_at(0), 0u);
  for (std::uint64_t t = 0; t < 4; ++t) EXPECT_EQ(tree.find(t), 2u);
  tree.add(0, 1);
  EXPECT_EQ(tree.find(0), 0u);
}

TEST(FenwickTest, BlockedRebuildIsBitIdenticalToSequential) {
  // The sharded stage-2 commit hands apply_deltas a pool; the blocked
  // parallel rebuild must produce the exact tree the sequential rebuild
  // does for every size x block-count combination (including sizes below
  // the parallel threshold, where it falls back to the sequential path).
  ThreadPool pool(3);
  for (const std::size_t n : {1UL, 7UL, 1024UL, 4096UL, 10000UL, 65536UL}) {
    FenwickTree sequential;
    sequential.resize(n);
    Rng rng{n};
    for (std::size_t i = 0; i < n; ++i) sequential.add(i, rng.uniform(100));

    FenwickTree blocked;
    blocked.resize(n);
    for (std::size_t i = 0; i < n; ++i) blocked.add(i, sequential.value_at(i));
    for (const std::size_t blocks : {1UL, 3UL, 4UL, 8UL, 64UL}) {
      blocked.rebuild_bulk(pool, blocks);
      ASSERT_EQ(blocked.total(), sequential.total())
          << "n=" << n << " blocks=" << blocks;
      for (std::size_t i = 0; i <= n; i += std::max<std::size_t>(1, n / 97)) {
        ASSERT_EQ(blocked.prefix_sum(i), sequential.prefix_sum(i))
            << "n=" << n << " blocks=" << blocks << " prefix " << i;
      }
      for (std::uint64_t t = 0; t < sequential.total();
           t += std::max<std::uint64_t>(1, sequential.total() / 131)) {
        ASSERT_EQ(blocked.find(t), sequential.find(t))
            << "n=" << n << " blocks=" << blocks << " target " << t;
      }
    }
  }
}

TEST(FenwickTest, ApplyDeltasPooledMatchesSequential) {
  // Drive apply_deltas down its rebuild branch (many deltas) with and
  // without a pool; the resulting trees must agree everywhere.
  constexpr std::size_t kN = 8192;
  ThreadPool pool(3);
  FenwickTree with_pool;
  FenwickTree without_pool;
  with_pool.resize(kN);
  without_pool.resize(kN);
  Rng rng{99};
  for (std::size_t i = 0; i < kN; ++i) {
    const std::uint64_t v = rng.uniform(50) + 1;
    with_pool.add(i, v);
    without_pool.add(i, v);
  }
  std::vector<std::pair<std::size_t, std::int64_t>> deltas;
  for (std::size_t i = 0; i < kN; i += 2) {
    deltas.emplace_back(i, i % 4 == 0 ? 3 : -1);
  }
  with_pool.apply_deltas(deltas, &pool, 8);
  without_pool.apply_deltas(deltas);
  ASSERT_EQ(with_pool.total(), without_pool.total());
  for (std::size_t i = 0; i <= kN; i += 37) {
    ASSERT_EQ(with_pool.prefix_sum(i), without_pool.prefix_sum(i));
  }
}

TEST(FenwickTest, ResizePreservesValues) {
  FenwickTree tree;
  tree.resize(3);
  tree.add(0, 5);
  tree.add(2, 2);
  tree.resize(50);
  EXPECT_EQ(tree.total(), 7u);
  EXPECT_EQ(tree.prefix_sum(3), 7u);
  tree.add(40, 1);
  EXPECT_EQ(tree.total(), 8u);
  EXPECT_EQ(tree.find(7), 40u);
}

}  // namespace
}  // namespace now
