#include "common/math_util.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace now {
namespace {

TEST(MathUtilTest, LogNIsFlooredAtOne) {
  EXPECT_DOUBLE_EQ(log_n(1.0), 1.0);
  EXPECT_DOUBLE_EQ(log_n(0.0), 1.0);
  EXPECT_DOUBLE_EQ(log_n(std::exp(1.0)), 1.0);
  EXPECT_NEAR(log_n(std::exp(3.0)), 3.0, 1e-12);
}

TEST(MathUtilTest, LogPow) {
  EXPECT_NEAR(log_pow(std::exp(2.0), 3.0), 8.0, 1e-9);
  EXPECT_DOUBLE_EQ(log_pow(1.0, 5.0), 1.0);
}

TEST(MathUtilTest, CeilLogPowRespectsFloor) {
  EXPECT_EQ(ceil_log_pow(std::exp(2.0), 2.0), 4u);
  EXPECT_EQ(ceil_log_pow(1.0, 2.0, 7), 7u);
}

TEST(MathUtilTest, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 5), 2u);
  EXPECT_EQ(ceil_div(11, 5), 3u);
  EXPECT_EQ(ceil_div(1, 100), 1u);
  EXPECT_EQ(ceil_div(0, 3), 0u);
}

TEST(MathUtilTest, IsqrtExactSquares) {
  for (std::uint64_t r = 0; r <= 1000; ++r) EXPECT_EQ(isqrt(r * r), r);
}

TEST(MathUtilTest, IsqrtBetweenSquares) {
  EXPECT_EQ(isqrt(2), 1u);
  EXPECT_EQ(isqrt(3), 1u);
  EXPECT_EQ(isqrt(8), 2u);
  EXPECT_EQ(isqrt(99), 9u);
  EXPECT_EQ(isqrt((1ULL << 32) - 1), 65535u);
}

}  // namespace
}  // namespace now
