#include "common/stats.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace now {
namespace {

TEST(RunningStatTest, BasicMoments) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatTest, EmptyAndSingle) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(QuantileTest, KnownQuantiles) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
}

TEST(QuantileTest, Interpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 5.0);
}

TEST(ChiSquareTest, UniformDataHasHighPValue) {
  std::vector<std::uint64_t> observed{100, 105, 95, 102, 98};
  std::vector<double> probs(5, 0.2);
  const double stat = chi_square_statistic(observed, probs);
  EXPECT_GT(chi_square_p_value(stat, 4), 0.5);
}

TEST(ChiSquareTest, SkewedDataHasLowPValue) {
  std::vector<std::uint64_t> observed{400, 25, 25, 25, 25};
  std::vector<double> probs(5, 0.2);
  const double stat = chi_square_statistic(observed, probs);
  EXPECT_LT(chi_square_p_value(stat, 4), 1e-6);
}

TEST(ChiSquareTest, PValueBoundaries) {
  EXPECT_DOUBLE_EQ(chi_square_p_value(0.0, 5), 1.0);
  EXPECT_DOUBLE_EQ(chi_square_p_value(10.0, 0), 1.0);
  // Large statistic, small dof -> essentially zero.
  EXPECT_LT(chi_square_p_value(1000.0, 3), 1e-12);
}

TEST(ChiSquareTest, MedianOfChiSquare1IsAboutHalf) {
  // P(X > 0.455) ~ 0.5 for chi-square with 1 dof.
  EXPECT_NEAR(chi_square_p_value(0.455, 1), 0.5, 0.01);
}

TEST(LinearFitTest, RecoversExactLine) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y;
  for (const double xi : x) y.push_back(3.0 + 2.0 * xi);
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(LinearFitTest, NoisyLineStillGoodFit) {
  Rng rng{5};
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    const double xi = static_cast<double>(i);
    x.push_back(xi);
    y.push_back(1.0 + 0.5 * xi + (rng.uniform01() - 0.5));
  }
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 0.5, 0.05);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(PolylogFitTest, RecoversPolylogExponent) {
  // cost = 7 * (ln n)^3.
  std::vector<double> n;
  std::vector<double> cost;
  for (double v = 256; v <= 1 << 20; v *= 2) {
    n.push_back(v);
    cost.push_back(7.0 * std::pow(std::log(v), 3.0));
  }
  const auto fit = polylog_fit(n, cost);
  EXPECT_NEAR(fit.slope, 3.0, 1e-6);
  EXPECT_NEAR(std::exp(fit.intercept), 7.0, 1e-6);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(PowerlawFitTest, RecoversExponent) {
  // cost = 2 * n^{1.5}.
  std::vector<double> n;
  std::vector<double> cost;
  for (double v = 64; v <= 65536; v *= 4) {
    n.push_back(v);
    cost.push_back(2.0 * std::pow(v, 1.5));
  }
  const auto fit = powerlaw_fit(n, cost);
  EXPECT_NEAR(fit.slope, 1.5, 1e-9);
  EXPECT_NEAR(std::exp(fit.intercept), 2.0, 1e-6);
}

TEST(PowerlawFitTest, DistinguishesPolylogFromPolynomial) {
  // A genuinely polylog curve should yield a tiny power-law exponent.
  std::vector<double> n;
  std::vector<double> cost;
  for (double v = 1 << 8; v <= 1 << 20; v *= 2) {
    n.push_back(v);
    cost.push_back(std::pow(std::log(v), 4.0));
  }
  const auto fit = powerlaw_fit(n, cost);
  EXPECT_LT(fit.slope, 0.5);
}

}  // namespace
}  // namespace now
