#include "common/node_set.hpp"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace now {
namespace {

TEST(NodeSetTest, InsertEraseContains) {
  NodeSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(set.insert(NodeId{7}));
  EXPECT_FALSE(set.insert(NodeId{7}));  // duplicate
  EXPECT_TRUE(set.insert(NodeId{100000}));  // far id: new page
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(NodeId{7}));
  EXPECT_TRUE(set.contains(NodeId{100000}));
  EXPECT_FALSE(set.contains(NodeId{8}));

  EXPECT_TRUE(set.erase(NodeId{7}));
  EXPECT_FALSE(set.erase(NodeId{7}));  // already gone
  EXPECT_FALSE(set.contains(NodeId{7}));
  EXPECT_EQ(set.size(), 1u);
}

TEST(NodeSetTest, IterationVisitsEveryMemberOnce) {
  NodeSet set{NodeId{1}, NodeId{5}, NodeId{9}, NodeId{2}};
  std::vector<NodeId> seen(set.begin(), set.end());
  std::sort(seen.begin(), seen.end());
  const std::vector<NodeId> expected = {NodeId{1}, NodeId{2}, NodeId{5},
                                        NodeId{9}};
  EXPECT_EQ(seen, expected);
}

TEST(NodeSetTest, EraseByIteratorSupportsScanLoops) {
  NodeSet set;
  for (std::uint64_t i = 0; i < 10; ++i) set.insert(NodeId{i});
  // Erase all even ids with the erase-while-scanning idiom.
  for (auto it = set.begin(); it != set.end();) {
    if (it->value() % 2 == 0) {
      it = set.erase(it);
    } else {
      ++it;
    }
  }
  EXPECT_EQ(set.size(), 5u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(set.contains(NodeId{i}), i % 2 == 1) << i;
  }
}

TEST(NodeSetTest, AtIndexEnablesUniformSampling) {
  NodeSet set{NodeId{3}, NodeId{4}};
  std::vector<NodeId> via_index;
  for (std::size_t i = 0; i < set.size(); ++i) {
    via_index.push_back(set.at_index(i));
  }
  std::sort(via_index.begin(), via_index.end());
  EXPECT_EQ(via_index, (std::vector<NodeId>{NodeId{3}, NodeId{4}}));
}

TEST(NodeSetTest, CopiesAreIndependent) {
  NodeSet a{NodeId{1}, NodeId{2}};
  NodeSet b = a;
  b.erase(NodeId{1});
  b.insert(NodeId{3});
  EXPECT_TRUE(a.contains(NodeId{1}));
  EXPECT_FALSE(a.contains(NodeId{3}));
  EXPECT_FALSE(b.contains(NodeId{1}));
  EXPECT_TRUE(b.contains(NodeId{3}));
}

TEST(NodeSetTest, ConstructFromIteratorRange) {
  const std::vector<NodeId> ids = {NodeId{10}, NodeId{20}, NodeId{10}};
  const NodeSet set(ids.begin(), ids.end());
  EXPECT_EQ(set.size(), 2u);  // duplicate collapsed
  EXPECT_TRUE(set.contains(NodeId{10}));
  EXPECT_TRUE(set.contains(NodeId{20}));
}

}  // namespace
}  // namespace now
