#include "common/rng.hpp"

#include <algorithm>
#include <array>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace now {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a{12345};
  Rng b{12345};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng{7};
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform(bound), bound);
  }
}

TEST(RngTest, UniformInRange) {
  Rng rng{9};
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.uniform_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, Uniform01InUnitInterval) {
  Rng rng{11};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIsUnbiasedChiSquare) {
  Rng rng{13};
  constexpr std::size_t kBins = 16;
  constexpr std::size_t kDraws = 64000;
  std::vector<std::uint64_t> counts(kBins, 0);
  for (std::size_t i = 0; i < kDraws; ++i) counts[rng.uniform(kBins)]++;
  std::vector<double> expected(kBins, 1.0 / kBins);
  const double stat = chi_square_statistic(counts, expected);
  const double p = chi_square_p_value(stat, kBins - 1);
  EXPECT_GT(p, 1e-4);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng{17};
  const double p = 0.3;
  int hits = 0;
  constexpr int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i) hits += rng.bernoulli(p) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, p, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng{19};
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-1.0));
  EXPECT_TRUE(rng.bernoulli(2.0));
}

TEST(RngTest, ExponentialHasCorrectMean) {
  Rng rng{23};
  const double rate = 4.0;
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) stat.add(rng.exponential(rate));
  EXPECT_NEAR(stat.mean(), 1.0 / rate, 0.01);
  for (int i = 0; i < 100; ++i) EXPECT_GT(rng.exponential(rate), 0.0);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng{29};
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = values;
  rng.shuffle(std::span<int>(shuffled));
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, values);
}

TEST(RngTest, ShuffleIsUniformOverPositions) {
  // Each value should land in each position ~ uniformly.
  Rng rng{31};
  constexpr std::size_t kSize = 5;
  constexpr std::size_t kTrials = 30000;
  std::array<std::array<std::uint64_t, kSize>, kSize> counts{};
  for (std::size_t t = 0; t < kTrials; ++t) {
    std::array<int, kSize> v{0, 1, 2, 3, 4};
    rng.shuffle(std::span<int>(v));
    for (std::size_t pos = 0; pos < kSize; ++pos)
      counts[static_cast<std::size_t>(v[pos])][pos]++;
  }
  std::vector<double> expected(kSize, 1.0 / kSize);
  for (std::size_t value = 0; value < kSize; ++value) {
    const double stat = chi_square_statistic(counts[value], expected);
    EXPECT_GT(chi_square_p_value(stat, kSize - 1), 1e-4) << "value " << value;
  }
}

TEST(RngTest, SampleDistinctProducesDistinctInRange) {
  Rng rng{37};
  for (std::size_t n : {5ULL, 20ULL, 100ULL}) {
    for (std::size_t k = 0; k <= std::min<std::size_t>(n, 10); ++k) {
      const auto sample = rng.sample_distinct(n, k);
      EXPECT_EQ(sample.size(), k);
      std::set<std::size_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), k);
      for (const auto v : sample) EXPECT_LT(v, n);
    }
  }
}

TEST(RngTest, SampleDistinctFullRange) {
  Rng rng{41};
  const auto sample = rng.sample_distinct(6, 6);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 6u);
}

TEST(RngTest, SampleDistinctIsUniform) {
  // Every element should be included with probability k/n.
  Rng rng{43};
  constexpr std::size_t kN = 10;
  constexpr std::size_t kK = 3;
  constexpr std::size_t kTrials = 30000;
  std::vector<std::uint64_t> inclusion(kN, 0);
  for (std::size_t t = 0; t < kTrials; ++t) {
    for (const auto v : rng.sample_distinct(kN, kK)) inclusion[v]++;
  }
  const double expected = static_cast<double>(kTrials) * kK / kN;
  for (const auto count : inclusion) {
    EXPECT_NEAR(static_cast<double>(count), expected, expected * 0.07);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a{53};
  Rng child = a.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == child.next() ? 1 : 0;
  EXPECT_LT(equal, 5);
}

TEST(RngTest, DeriveStreamIsAPureFunctionOfItsTriple) {
  Rng a = Rng::derive_stream(9, 3, 7);
  Rng b = Rng::derive_stream(9, 3, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DeriveStreamSeparatesNearbyTriples) {
  // Streams for adjacent (batch, op) pairs must be unrelated — the sharded
  // planner hands stream (batch, i) to operation i of every batch.
  const std::vector<Rng> streams = {
      Rng::derive_stream(1, 0, 0), Rng::derive_stream(1, 0, 1),
      Rng::derive_stream(1, 1, 0), Rng::derive_stream(2, 0, 0)};
  std::vector<std::vector<std::uint64_t>> draws;
  for (Rng rng : streams) {
    auto& seq = draws.emplace_back();
    for (int i = 0; i < 100; ++i) seq.push_back(rng.next());
  }
  for (std::size_t i = 0; i < draws.size(); ++i) {
    for (std::size_t j = i + 1; j < draws.size(); ++j) {
      int equal = 0;
      for (std::size_t k = 0; k < 100; ++k) {
        equal += draws[i][k] == draws[j][k] ? 1 : 0;
      }
      EXPECT_LT(equal, 5) << "streams " << i << " and " << j;
    }
  }
}

TEST(RngTest, DeriveStreamsMatchesIndividualDerivesByteExactly) {
  // The bulk kernel must be indistinguishable from N individual
  // derive_stream calls — the batch engine's bit-identity contract rides
  // on it. Compare raw 256-bit states, not just draws.
  const std::uint64_t seeds[] = {0, 1, 42, 0xDEADBEEFCAFEF00DULL};
  const std::uint64_t streams[] = {0, 1, 17, ~std::uint64_t{0} - 3};
  const std::uint64_t firsts[] = {0, 1, 1000, ~std::uint64_t{0} - 5};
  for (const auto seed : seeds) {
    for (const auto stream : streams) {
      for (const auto first : firsts) {
        constexpr std::size_t kCount = 9;
        std::vector<Rng> bulk(kCount, Rng{0});
        Rng::derive_streams(seed, stream, first, kCount, bulk.data());
        for (std::size_t i = 0; i < kCount; ++i) {
          const Rng one = Rng::derive_stream(seed, stream, first + i);
          EXPECT_EQ(bulk[i].state(), one.state())
              << "seed=" << seed << " stream=" << stream
              << " substream=" << first + i;
        }
      }
    }
  }
}

TEST(RngTest, DeriveStreamsAcrossBatchBoundary) {
  // Two bulk calls for consecutive batches (streams) must each match their
  // own per-call derivations: the hoisted prefix is per-(seed, stream).
  constexpr std::uint64_t kSeed = 777;
  constexpr std::size_t kOps = 33;
  for (std::uint64_t batch = 0; batch < 4; ++batch) {
    std::vector<Rng> bulk(kOps, Rng{0});
    Rng::derive_streams(kSeed, batch, 0, kOps, bulk.data());
    for (std::size_t i = 0; i < kOps; ++i) {
      EXPECT_EQ(bulk[i].state(), Rng::derive_stream(kSeed, batch, i).state());
    }
  }
}

TEST(RngTest, DeriveStreamsZeroCountIsANoOp) {
  Rng canary{123};
  const auto before = canary.state();
  Rng::derive_streams(5, 6, 7, 0, &canary);
  EXPECT_EQ(canary.state(), before);
}

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(splitmix64(s1), splitmix64(s2));
}

}  // namespace
}  // namespace now
