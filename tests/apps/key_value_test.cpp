#include "apps/key_value.hpp"

#include <gtest/gtest.h>

namespace now::apps {
namespace {

core::NowParams kv_params() {
  core::NowParams p;
  p.max_size = 1 << 12;
  p.k = 5;
  p.tau = 0.10;
  p.walk_mode = core::WalkMode::kSampleExact;
  return p;
}

TEST(KeyValueTest, PutGetRoundTrip) {
  Metrics metrics;
  core::NowSystem system{kv_params(), metrics, 1};
  system.initialize(500, 50, core::InitTopology::kModeledSparse);
  KeyValueService kv{system};

  const auto put = kv.put(0xABCDEF, 42);
  ASSERT_TRUE(put.stored);
  EXPECT_TRUE(put.certified);
  EXPECT_TRUE(put.home.valid());

  const auto got = kv.get(0xABCDEF);
  EXPECT_TRUE(got.found);
  EXPECT_TRUE(got.authentic);
  EXPECT_EQ(got.value, 42u);
  EXPECT_EQ(got.home, put.home);
}

TEST(KeyValueTest, MissingKeyNotFound) {
  Metrics metrics;
  core::NowSystem system{kv_params(), metrics, 2};
  system.initialize(500, 50, core::InitTopology::kModeledSparse);
  KeyValueService kv{system};
  const auto got = kv.get(0xDEAD);
  EXPECT_FALSE(got.found);
  EXPECT_TRUE(got.home.valid());
}

TEST(KeyValueTest, OverwriteUpdatesValue) {
  Metrics metrics;
  core::NowSystem system{kv_params(), metrics, 3};
  system.initialize(500, 0, core::InitTopology::kModeledSparse);
  KeyValueService kv{system};
  kv.put(7, 1);
  kv.put(7, 2);
  EXPECT_EQ(kv.get(7).value, 2u);
  EXPECT_EQ(kv.stored_entries(), 1u);
}

TEST(KeyValueTest, KeysSpreadAcrossClusters) {
  Metrics metrics;
  core::NowSystem system{kv_params(), metrics, 4};
  system.initialize(800, 0, core::InitTopology::kModeledSparse);
  KeyValueService kv{system};
  std::set<ClusterId> homes;
  for (std::uint64_t key = 0; key < 64; ++key) {
    homes.insert(kv.put(key * 0x1234567, key).home);
  }
  // Rendezvous hashing should use most of the clusters.
  EXPECT_GT(homes.size(), system.num_clusters() / 2);
}

TEST(KeyValueTest, RepairRehomesAfterChurn) {
  Metrics metrics;
  core::NowSystem system{kv_params(), metrics, 5};
  system.initialize(600, 60, core::InitTopology::kModeledSparse);
  KeyValueService kv{system};
  constexpr std::size_t kKeys = 40;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    ASSERT_TRUE(kv.put(key * 0xBEEF123, key).stored);
  }

  // Drive enough churn to split/merge clusters, then repair.
  Rng rng{6};
  for (int i = 0; i < 200; ++i) {
    if (rng.bernoulli(0.7)) {
      system.join(rng.bernoulli(0.10));
    } else {
      system.leave(system.state().random_node(rng));
    }
  }
  kv.repair();
  EXPECT_EQ(kv.stored_entries(), kKeys);
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const auto got = kv.get(key * 0xBEEF123);
    EXPECT_TRUE(got.found) << "key " << key << " lost after churn+repair";
    EXPECT_EQ(got.value, key);
  }
}

TEST(KeyValueTest, CostsAreChargedPerOperation) {
  Metrics metrics;
  core::NowSystem system{kv_params(), metrics, 7};
  system.initialize(500, 0, core::InitTopology::kModeledSparse);
  KeyValueService kv{system};
  kv.put(1, 1);
  kv.get(1);
  EXPECT_EQ(metrics.operation_count(metrics.find("kv.put")), 1u);
  EXPECT_EQ(metrics.operation_count(metrics.find("kv.get")), 1u);
  EXPECT_GT(metrics.operation_total(metrics.find("kv.put")).messages, 0u);
  // Routing costs are polylog-sized: far below n^2.
  EXPECT_LT(metrics.operation_total(metrics.find("kv.get")).messages,
            static_cast<std::uint64_t>(500) * 500);
}

TEST(KeyValueTest, RepairOnStableTopologyMovesNothing) {
  Metrics metrics;
  core::NowSystem system{kv_params(), metrics, 8};
  system.initialize(500, 0, core::InitTopology::kModeledSparse);
  KeyValueService kv{system};
  for (std::uint64_t key = 0; key < 10; ++key) kv.put(key, key);
  EXPECT_EQ(kv.repair(), 0u);
}

}  // namespace
}  // namespace now::apps
