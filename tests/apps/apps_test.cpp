#include <map>

#include <gtest/gtest.h>

#include "apps/aggregation.hpp"
#include "apps/agreement_service.hpp"
#include "apps/broadcast.hpp"
#include "apps/sampling.hpp"
#include "common/stats.hpp"

namespace now::apps {
namespace {

core::NowParams app_params() {
  core::NowParams p;
  p.max_size = 1 << 12;
  p.walk_mode = core::WalkMode::kSimulate;
  return p;
}

TEST(BroadcastTest, ReachesEveryClusterWithHonestMajorities) {
  Metrics metrics;
  core::NowSystem system{app_params(), metrics, 1};
  system.initialize(500, 75);
  const NodeId source = system.state().live_nodes().front();
  const auto report = broadcast(system, source, 42);
  EXPECT_TRUE(report.delivered_everywhere);
  EXPECT_EQ(report.clusters_reached, system.num_clusters());
  EXPECT_EQ(report.value, 42u);
  EXPECT_GT(report.cost.messages, 0u);
}

TEST(BroadcastTest, CheaperThanNaiveAtModerateScale) {
  Metrics metrics;
  core::NowSystem system{app_params(), metrics, 2};
  system.initialize(1000, 0, core::InitTopology::kModeledSparse);
  const NodeId source = system.state().live_nodes().front();
  const auto report = broadcast(system, source, 7);
  const auto naive = naive_broadcast_cost(system.num_nodes());
  EXPECT_LT(report.cost.messages, naive.messages);
}

TEST(BroadcastTest, CompromisedRelayClusterIsContained) {
  // Corrupt one cluster to a Byzantine majority by fiat: it can no longer
  // relay, but the expander's redundancy routes around it unless it is a cut
  // vertex (which an expander essentially never has).
  Metrics metrics;
  core::NowSystem system{app_params(), metrics, 3};
  system.initialize(500, 0);
  auto& state = const_cast<core::NowState&>(system.state());
  // Pick a non-source cluster and corrupt all its members.
  const auto source_node = state.live_nodes().front();
  const ClusterId source_cluster = state.home_of(source_node);
  ClusterId victim = ClusterId::invalid();
  for (const ClusterId id : state.cluster_ids()) {
    if (id != source_cluster) {
      victim = id;
      break;
    }
  }
  for (const NodeId m : state.cluster_at(victim).members()) {
    state.byzantine.insert(m);
  }
  const auto report = broadcast(system, source_node, 9);
  // All *other* clusters still receive the value.
  EXPECT_GE(report.clusters_reached, system.num_clusters() - 1);
}

TEST(SamplingTest, SamplesAreUniformOverNodes) {
  Metrics metrics;
  core::NowSystem system{app_params(), metrics, 4};
  system.initialize(300, 45);
  const ClusterId start = system.state().cluster_ids().front();

  constexpr int kTrials = 6000;
  std::map<NodeId, std::uint64_t> counts;
  for (int i = 0; i < kTrials; ++i) {
    const auto s = sample_node(system, start);
    ASSERT_TRUE(s.node.valid());
    counts[s.node]++;
  }
  // Chi-square against uniform over all 300 nodes.
  std::vector<std::uint64_t> observed;
  std::vector<double> probs;
  for (const NodeId id : system.state().live_nodes()) {
    observed.push_back(counts[id]);
    probs.push_back(1.0 / static_cast<double>(system.num_nodes()));
  }
  const double stat = chi_square_statistic(observed, probs);
  EXPECT_GT(chi_square_p_value(stat, observed.size() - 1), 1e-4);
}

TEST(SamplingTest, CostIsPolylogSized) {
  Metrics metrics;
  core::NowSystem system{app_params(), metrics, 5};
  system.initialize(800, 0);
  const ClusterId start = system.state().cluster_ids().front();
  const auto s = sample_node(system, start);
  // Polylog budget: generous ceiling far below n^2 (= 640k at n=800).
  EXPECT_LT(s.cost.messages, 400000u);
  EXPECT_GT(s.cost.messages, 0u);
}

TEST(AggregationTest, ComputesExactSumWithHonestNodes) {
  Metrics metrics;
  core::NowSystem system{app_params(), metrics, 6};
  system.initialize(400, 0);
  const NodeId root = system.state().live_nodes().front();
  const auto report = aggregate_sum(
      system, root, [](NodeId id) { return id.value(); });
  std::uint64_t expected = 0;
  for (const NodeId id : system.state().live_nodes())
    expected += id.value();
  EXPECT_EQ(report.total, expected);
  EXPECT_TRUE(report.complete);
}

TEST(AggregationTest, ByzantineValuesOnlyShiftTheirOwnTerms) {
  Metrics metrics;
  core::NowSystem system{app_params(), metrics, 7};
  system.initialize(400, 60);
  const NodeId root = system.state().live_nodes().front();
  const auto report = aggregate_sum(
      system, root, [](NodeId) { return std::uint64_t{1}; },
      /*byzantine_value=*/0);
  // Every honest node contributes 1; Byzantine nodes contribute 0.
  EXPECT_EQ(report.total, 400u - 60u);
}

TEST(AgreementServiceTest, DecidesHonestMajority) {
  Metrics metrics;
  core::NowSystem system{app_params(), metrics, 8};
  system.initialize(400, 60);
  // All honest vote true; Byzantine vote false: decision must be true.
  const auto report = decide_majority(
      system, [](NodeId) { return true; }, /*byzantine_vote=*/false);
  EXPECT_TRUE(report.decision);
  EXPECT_TRUE(report.sound);
}

TEST(AgreementServiceTest, MinoritySideLoses) {
  Metrics metrics;
  core::NowSystem system{app_params(), metrics, 9};
  system.initialize(400, 60);
  // Honest split 70/30 toward false; Byzantine all vote true.
  Rng rng{10};
  std::map<NodeId, bool> votes;
  for (const NodeId id : system.state().live_nodes()) {
    votes[id] = rng.bernoulli(0.3);
  }
  const auto report = decide_majority(
      system, [&](NodeId id) { return votes.at(id); },
      /*byzantine_vote=*/true);
  EXPECT_FALSE(report.decision);
}

TEST(AgreementServiceTest, CheaperThanFlatAgreement) {
  Metrics metrics;
  core::NowSystem system{app_params(), metrics, 11};
  system.initialize(1000, 150, core::InitTopology::kModeledSparse);
  const auto report = decide_majority(
      system, [](NodeId) { return true; }, false);
  // Flat phase-king over 1000 nodes costs ~ 1e9 messages; the clustered
  // service must be orders of magnitude cheaper.
  EXPECT_LT(report.cost.messages, 100000000u);
}

}  // namespace
}  // namespace now::apps
