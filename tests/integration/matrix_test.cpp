// Configuration-matrix property tests: the Theorem-3 invariants must hold
// across the cross product of the protocol's policy knobs, not just the
// defaults. One TEST_P sweep over {merge policy} x {threshold mode} x
// {randNum mode} x {robustness}, each run through init + mixed churn.
#include <tuple>

#include <gtest/gtest.h>

#include "core/now.hpp"

namespace now::core {
namespace {

using Config = std::tuple<MergePolicy, ThresholdMode, cluster::RandNumMode,
                          Robustness>;

class ConfigMatrixTest : public ::testing::TestWithParam<Config> {};

TEST_P(ConfigMatrixTest, ChurnPreservesInvariants) {
  const auto [merge, thresholds, rand_mode, robustness] = GetParam();
  NowParams p;
  p.max_size = 1 << 12;
  p.k = 6;
  p.tau = 0.10;
  p.merge_policy = merge;
  p.threshold_mode = thresholds;
  p.rand_num_mode = rand_mode;
  p.robustness = robustness;
  p.walk_mode = WalkMode::kSampleExact;

  Metrics metrics;
  NowSystem system{p, metrics, 4242};
  system.initialize(500, 50, InitTopology::kModeledSparse);
  Rng rng{17};

  // Mixed churn with a mild downward then upward drift so both split and
  // merge paths execute under every configuration.
  for (int step = 0; step < 150; ++step) {
    const double p_join = step < 75 ? 0.35 : 0.65;
    if (rng.bernoulli(p_join)) {
      system.join(rng.bernoulli(0.10));
    } else if (system.num_nodes() > 50) {
      system.leave(system.state().random_node(rng));
    }
    if (step % 10 == 0) {
      const auto inv = system.check();
      ASSERT_TRUE(inv.ok)
          << "step " << step << ": "
          << (inv.violations.empty() ? "" : inv.violations[0]);
    }
  }
  // Conservation: the node map, the partition and the index agree.
  const auto final_inv = system.check();
  EXPECT_TRUE(final_inv.ok);
  EXPECT_EQ(system.state().live_nodes().size(), system.num_nodes());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, ConfigMatrixTest,
    ::testing::Combine(
        ::testing::Values(MergePolicy::kDissolve, MergePolicy::kAbsorb),
        ::testing::Values(ThresholdMode::kStaticN,
                          ThresholdMode::kDynamicCurrentN),
        ::testing::Values(cluster::RandNumMode::kFast,
                          cluster::RandNumMode::kRobust),
        ::testing::Values(Robustness::kPlain, Robustness::kAuthenticated)));

class WalkModeEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(WalkModeEquivalenceTest, BothWalkModesKeepTheSameInvariants) {
  // The kSampleExact fast path must be behaviorally indistinguishable from
  // the simulated walk at the invariant level (the endpoint laws already
  // match by the RandClLawTest chi-square).
  for (const auto mode : {WalkMode::kSimulate, WalkMode::kSampleExact}) {
    NowParams p;
    p.max_size = 1 << 10;
    p.k = 5;
    p.tau = 0.10;
    p.walk_mode = mode;
    Metrics metrics;
    NowSystem system{p, metrics, static_cast<std::uint64_t>(GetParam())};
    system.initialize(300, 30, InitTopology::kModeledSparse);
    Rng rng{static_cast<std::uint64_t>(GetParam()) * 3 + 1};
    for (int step = 0; step < 40; ++step) {
      if (rng.bernoulli(0.5)) {
        system.join(rng.bernoulli(0.10));
      } else {
        system.leave(system.state().random_node(rng));
      }
    }
    const auto inv = system.check();
    EXPECT_TRUE(inv.ok) << (inv.violations.empty() ? "" : inv.violations[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalkModeEquivalenceTest,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace now::core
