#include "sim/table.hpp"

#include <sstream>

#include <gtest/gtest.h>

namespace now::sim {
namespace {

TEST(TableTest, PrintsAlignedColumns) {
  Table t({"N", "cost"});
  t.add_row({"1024", "33"});
  t.add_row({"65536", "128"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("N"), std::string::npos);
  EXPECT_NE(out.find("65536"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableTest, FormatHelpers) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(std::uint64_t{42}), "42");
}

}  // namespace
}  // namespace now::sim
