// Integration tests: full NOW deployments driven by each adversary through
// the scenario harness, checking the Theorem-3 story end to end.
#include "sim/scenario.hpp"

#include <gtest/gtest.h>

#include "common/math_util.hpp"

namespace now::sim {
namespace {

ScenarioConfig base_config() {
  ScenarioConfig config;
  config.params.max_size = 1 << 12;
  config.params.k = 5;    // deterministic-test regime (see core tests)
  config.params.tau = 0.10;
  config.params.walk_mode = core::WalkMode::kSampleExact;
  config.n0 = 400;
  config.steps = 400;
  config.sample_every = 25;
  return config;
}

TEST(ScenarioTest, RandomChurnHoldsInvariants) {
  auto config = base_config();
  Metrics metrics;
  adversary::RandomChurnAdversary adv{config.params.tau,
                                      adversary::ChurnSchedule::hold(400)};
  const auto result = run_scenario(config, adv, metrics);
  EXPECT_FALSE(result.ever_compromised);
  EXPECT_LT(result.peak_byz_fraction, 1.0 / 3.0);
  EXPECT_NEAR(static_cast<double>(result.final_nodes), 400.0, 5.0);
  for (const auto& s : result.samples) {
    EXPECT_TRUE(s.overlay_connected) << "step " << s.step;
  }
}

TEST(ScenarioTest, JoinLeaveAttackIsNeutralizedByShuffling) {
  auto config = base_config();
  config.steps = 600;
  Metrics metrics;
  adversary::JoinLeaveAdversary adv{config.params.tau,
                                    adversary::ChurnSchedule::hold(400)};
  const auto result = run_scenario(config, adv, metrics);
  EXPECT_FALSE(result.ever_compromised)
      << "first compromise at step " << result.first_compromise_step;
}

TEST(ScenarioTest, ForcedLeaveAttackIsNeutralizedByShuffling) {
  auto config = base_config();
  Metrics metrics;
  adversary::ForcedLeaveAdversary adv{config.params.tau};
  const auto result = run_scenario(config, adv, metrics);
  EXPECT_FALSE(result.ever_compromised);
}

TEST(ScenarioTest, PolynomialGrowthAndShrinkage) {
  // n travels sqrt(N) -> ~N/4 -> back: the polynomial variance headline.
  auto config = base_config();
  const auto n_low = static_cast<std::size_t>(isqrt(config.params.max_size));
  const std::size_t n_high = config.params.max_size / 4;
  config.n0 = 0;  // start at sqrt(N)
  config.steps = 2 * (n_high - n_low);
  config.sample_every = 100;
  Metrics metrics;
  adversary::RandomChurnAdversary adv{
      config.params.tau, adversary::ChurnSchedule::oscillate(n_low, n_high)};
  const auto result = run_scenario(config, adv, metrics);
  EXPECT_FALSE(result.ever_compromised);
  EXPECT_GT(result.total_splits, 0u);
  EXPECT_GT(result.total_merges, 0u);
  // Cluster count tracked the growth: at peak it must have multiplied.
  std::size_t peak_clusters = 0;
  for (const auto& s : result.samples) {
    peak_clusters = std::max(peak_clusters, s.num_clusters);
  }
  EXPECT_GT(peak_clusters, 4 * result.samples.front().num_clusters);
  // ... and came back down.
  EXPECT_LT(result.final_clusters, peak_clusters / 2);
}

TEST(ScenarioTest, ClusterSizesStayLogarithmic) {
  auto config = base_config();
  config.steps = 300;
  Metrics metrics;
  adversary::RandomChurnAdversary adv{config.params.tau,
                                      adversary::ChurnSchedule::hold(400)};
  const auto result = run_scenario(config, adv, metrics);
  for (const auto& s : result.samples) {
    EXPECT_LE(s.max_cluster_size, config.params.split_threshold());
    if (s.num_clusters > 1) {
      EXPECT_GE(s.min_cluster_size, config.params.merge_threshold());
    }
  }
}

TEST(ScenarioTest, MetricsExposePerOperationCosts) {
  auto config = base_config();
  config.steps = 100;
  Metrics metrics;
  adversary::RandomChurnAdversary adv{config.params.tau,
                                      adversary::ChurnSchedule::hold(400)};
  const auto result = run_scenario(config, adv, metrics);
  EXPECT_GT(result.samples.size(), 1u);
  EXPECT_GT(metrics.operation_count(metrics.find("join")), 0u);
  EXPECT_GT(metrics.operation_count(metrics.find("leave")), 0u);
  EXPECT_GT(metrics.operation_count(metrics.find("exchange")), 0u);
  const auto joins = metrics.operation_samples(metrics.find("join"));
  for (const auto& cost : joins) {
    EXPECT_GT(cost.messages, 0u);
    EXPECT_GT(cost.rounds, 0u);
  }
}

TEST(ScenarioTest, NoShuffleBaselineFallsToTheSameAttack) {
  auto config = base_config();
  config.params.shuffle_enabled = false;
  config.params.k = 3;  // the attack bench regime
  config.params.tau = 0.15;
  config.steps = 2500;
  config.sample_every = 10;
  Metrics metrics;
  adversary::JoinLeaveAdversary adv{config.params.tau,
                                    adversary::ChurnSchedule::hold(400),
                                    /*background_churn=*/0.0};
  const auto result = run_scenario(config, adv, metrics);
  EXPECT_TRUE(result.ever_compromised)
      << "no-shuffle baseline unexpectedly survived the join-leave attack";
}

TEST(ScenarioTest, BatchedAdversaryRespectsBudgetAndIsAbsorbed) {
  // The batched adversary corrupts a tau fraction of every step's joiners
  // and churns its misplaced nodes toward the worst cluster. With
  // shuffling on, the invariants must hold exactly as under the sequential
  // join-leave attack, and the global Byzantine budget tau * n must never
  // be exceeded.
  auto config = base_config();
  config.params.k = 10;
  config.params.tau = 0.10;
  config.steps = 40;
  config.sample_every = 5;
  config.batch_ops = 8;
  config.shards = 4;
  config.batch_byz_fraction = config.params.tau;
  config.batch_placement = BatchPlacement::kTargeted;
  Metrics metrics;
  adversary::RandomChurnAdversary adv{config.params.tau,
                                      adversary::ChurnSchedule::hold(400)};
  const auto result = run_scenario(config, adv, metrics);
  EXPECT_FALSE(result.ever_compromised);
  EXPECT_EQ(metrics.operation_count(metrics.find("batch")), 40u);
  EXPECT_LT(result.peak_byz_fraction, 1.0 / 3.0);
  EXPECT_EQ(result.final_nodes, 400u);  // size-neutral batches
  // The static adversary's global budget: corruptions per step are capped
  // at tau * (n + ops), so the final total can never exceed it.
  EXPECT_LE(static_cast<double>(result.final_byzantine),
            config.params.tau *
                static_cast<double>(result.final_nodes + config.batch_ops));
}

TEST(ScenarioTest, ForcedLeaveQuotaRespectedBudgetBindsAndAbsorbed) {
  // The batched forced-leave DoS: every step the adversary forces up to
  // batch_leave_quota victims out of the worst/smallest clusters while
  // corrupting a tau fraction of the joiners. The per-step quota must be
  // respected, the static adversary's global corruption budget must still
  // bind, and NOW's shuffling must absorb the combined attack.
  auto config = base_config();
  config.params.k = 10;
  config.params.tau = 0.10;
  config.steps = 40;
  config.sample_every = 5;
  config.batch_ops = 8;
  config.shards = 4;
  config.batch_byz_fraction = config.params.tau;
  config.batch_placement = BatchPlacement::kTargeted;
  config.batch_leave_quota = 5;
  Metrics metrics;
  adversary::RandomChurnAdversary adv{config.params.tau,
                                      adversary::ChurnSchedule::hold(400)};
  const auto result = run_scenario(config, adv, metrics);
  // Quota respected every step, and the attack actually ran.
  EXPECT_LE(result.max_step_forced_leaves, config.batch_leave_quota);
  EXPECT_GT(result.total_forced_leaves, 0u);
  EXPECT_LE(result.total_forced_leaves,
            config.batch_leave_quota * config.steps);
  // Budget cap still binds under the combined attack.
  EXPECT_LE(static_cast<double>(result.final_byzantine),
            config.params.tau *
                static_cast<double>(result.final_nodes + config.batch_ops));
  // Shuffling absorbs the leave-heavy churn: invariants hold throughout.
  EXPECT_FALSE(result.ever_compromised);
  EXPECT_LT(result.peak_byz_fraction, 1.0 / 3.0);
  EXPECT_EQ(result.final_nodes, 400u);  // size-neutral batches
  EXPECT_EQ(metrics.operation_count(metrics.find("batch")), 40u);
}

TEST(ScenarioTest, ForcedLeaveQuotaWithoutCorruptionStaysHealthy) {
  // Quota-only mode (batch_byz_fraction = 0): the adversary can churn
  // honest nodes out of the worst/smallest clusters but gains nothing —
  // the merge/rejoin machinery keeps sizes legal and no cluster ever
  // approaches compromise.
  auto config = base_config();
  config.params.k = 10;
  config.steps = 30;
  config.sample_every = 5;
  config.batch_ops = 6;
  config.shards = 4;
  config.batch_leave_quota = 6;  // every leave slot is adversarial
  Metrics metrics;
  adversary::RandomChurnAdversary adv{config.params.tau,
                                      adversary::ChurnSchedule::hold(400)};
  const auto result = run_scenario(config, adv, metrics);
  EXPECT_LE(result.max_step_forced_leaves, config.batch_leave_quota);
  EXPECT_GT(result.total_forced_leaves, 0u);
  EXPECT_FALSE(result.ever_compromised);
  for (const auto& s : result.samples) {
    EXPECT_TRUE(s.overlay_connected) << "step " << s.step;
    if (s.num_clusters > 1) {
      EXPECT_GE(s.min_cluster_size, config.params.merge_threshold());
    }
  }
}

TEST(ScenarioTest, BatchedShardedChurnHoldsInvariants) {
  // The high-throughput regime: every step is a batch of 8 joins + 8
  // leaves through the sharded engine. Invariants must survive exactly as
  // under one-op-per-step churn (k scaled as in the core sharding tests).
  auto config = base_config();
  config.params.k = 10;
  config.steps = 40;
  config.sample_every = 5;
  config.batch_ops = 8;
  config.shards = 4;
  Metrics metrics;
  adversary::RandomChurnAdversary adv{config.params.tau,
                                      adversary::ChurnSchedule::hold(400)};
  const auto result = run_scenario(config, adv, metrics);
  EXPECT_FALSE(result.ever_compromised);
  EXPECT_EQ(result.final_nodes, 400u);  // batches are size-neutral
  EXPECT_EQ(metrics.operation_count(metrics.find("batch")), 40u);
  for (const auto& s : result.samples) {
    EXPECT_TRUE(s.overlay_connected) << "step " << s.step;
  }
}

}  // namespace
}  // namespace now::sim
