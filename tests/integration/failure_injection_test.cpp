// Failure-injection tests: drive the message-level protocols with every
// modeled Byzantine behavior simultaneously with crashes/departures, and
// check the guarantees degrade exactly at the thresholds the theory gives —
// not before, not silently after.
#include <gtest/gtest.h>

#include "agreement/phase_king.hpp"
#include "cluster/rand_num.hpp"
#include "net/network.hpp"

namespace now {
namespace {

std::vector<NodeId> make_members(std::size_t n) {
  std::vector<NodeId> members;
  for (std::size_t i = 0; i < n; ++i) members.emplace_back(i);
  return members;
}

TEST(FailureInjectionTest, PhaseKingBreaksBeyondOneThird) {
  // With f >= n/3 the King algorithm's guarantees are void: demonstrate an
  // actual disagreement or validity violation can occur (this documents the
  // sharpness of the bound — at 5 of 13 Byzantine the honest nodes can be
  // steered).
  Metrics metrics;
  const auto members = make_members(13);
  NodeSet byz;
  for (std::size_t i = 0; i < 5; ++i) byz.insert(members[i]);  // > 13/3

  bool any_break = false;
  for (std::uint64_t seed = 0; seed < 30 && !any_break; ++seed) {
    Rng rng{seed};
    std::map<NodeId, std::uint64_t> inputs;
    for (const NodeId m : members) inputs[m] = 1;  // honest unanimity
    const auto result =
        run_phase_king(members, byz, inputs,
                       agreement::ByzBehavior::kEquivocate, metrics, rng);
    for (const auto& [id, v] : result.decisions) {
      if (v != 1) any_break = true;  // validity broken
    }
    std::uint64_t first = result.decisions.begin()->second;
    for (const auto& [id, v] : result.decisions) {
      if (v != first) any_break = true;  // agreement broken
    }
  }
  EXPECT_TRUE(any_break)
      << "expected the f >= n/3 regime to be breakable (bound sharpness)";
}

TEST(FailureInjectionTest, PhaseKingSurvivesExactlyAtTheBound) {
  // f = 4, n = 13 (f < n/3): must hold against the strongest behavior.
  Metrics metrics;
  const auto members = make_members(13);
  NodeSet byz;
  for (std::size_t i = 0; i < 4; ++i) byz.insert(members[i]);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng{seed + 100};
    std::map<NodeId, std::uint64_t> inputs;
    for (const NodeId m : members) inputs[m] = 1;
    const auto result =
        run_phase_king(members, byz, inputs,
                       agreement::ByzBehavior::kEquivocate, metrics, rng);
    for (const auto& [id, v] : result.decisions) ASSERT_EQ(v, 1u);
  }
}

TEST(FailureInjectionTest, RandNumFastModeDivergenceIsDetected) {
  // Mixed behaviors: the selective revealer can split honest views in fast
  // mode; the result flag must report it (no silent divergence).
  Metrics metrics;
  Rng rng{1};
  const auto members = make_members(9);
  const NodeSet byz{NodeId{0}, NodeId{1}};
  int diverged = 0;
  for (int i = 0; i < 400; ++i) {
    const auto result = cluster::run_rand_num(
        members, byz, 1 << 20, cluster::RandNumMode::kFast,
        cluster::RandNumByz::kSelectiveReveal, metrics, rng);
    diverged += result.agreement ? 0 : 1;
  }
  // With a wide range, almost every selective reveal splits the views —
  // and the flag must report every one of them.
  EXPECT_GT(diverged, 350);
}

TEST(FailureInjectionTest, RandNumRobustModeHandlesEveryBehaviorMatrix) {
  Metrics metrics;
  Rng rng{2};
  for (const std::size_t n : {4u, 7u, 10u, 13u}) {
    const auto members = make_members(n);
    NodeSet byz;
    for (std::size_t i = 0; i < (n - 1) / 3; ++i) byz.insert(members[i]);
    for (const auto behavior :
         {cluster::RandNumByz::kFollow, cluster::RandNumByz::kSilent,
          cluster::RandNumByz::kBiased,
          cluster::RandNumByz::kSelectiveReveal}) {
      for (int i = 0; i < 30; ++i) {
        const auto result = cluster::run_rand_num(
            members, byz, 64, cluster::RandNumMode::kRobust, behavior,
            metrics, rng);
        ASSERT_TRUE(result.agreement)
            << "n=" << n << " behavior=" << static_cast<int>(behavior);
        ASSERT_LT(result.value, 64u);
      }
    }
  }
}

TEST(FailureInjectionTest, DepartureMidProtocolDropsCleanly) {
  // An actor removed between rounds must not wedge the network or receive
  // ghost messages.
  Metrics metrics;
  net::InProcTransport transport;
  net::RoundEngine network{metrics, transport};

  class Chatter final : public net::Actor {
   public:
    Chatter(NodeId self, std::vector<NodeId> peers)
        : self_(self), peers_(std::move(peers)) {}
    void on_round(std::size_t, std::span<const net::Message> inbox,
                  net::Outbox& out) override {
      received += inbox.size();
      out.multicast(peers_, net::Tag::kApp, net::make_words({self_.value()}));
    }
    NodeId self_;
    std::vector<NodeId> peers_;
    std::size_t received = 0;
  };

  std::vector<NodeId> all{NodeId{1}, NodeId{2}, NodeId{3}};
  std::vector<Chatter*> raw;
  for (const NodeId id : all) {
    auto actor = std::make_unique<Chatter>(id, all);
    raw.push_back(actor.get());
    network.add_actor(id, std::move(actor));
  }
  network.run_rounds(3);
  const std::size_t before = raw[2]->received;
  network.remove_actor(NodeId{1});
  network.run_rounds(3);
  // Node 3 keeps receiving from node 2 (and itself) only.
  EXPECT_GT(raw[2]->received, before);
  EXPECT_EQ(network.num_actors(), 2u);
}

}  // namespace
}  // namespace now
