#include <sstream>

#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace now::sim {
namespace {

TEST(ScenarioCsvTest, WritesOneRowPerSample) {
  ScenarioResult result;
  InvariantSample a;
  a.step = 0;
  a.num_nodes = 100;
  a.num_clusters = 4;
  a.worst_byz_fraction = 0.125;
  a.overlay_connected = true;
  InvariantSample b = a;
  b.step = 50;
  b.compromised_clusters = 1;
  b.overlay_connected = false;
  result.samples = {a, b};

  std::ostringstream os;
  write_samples_csv(result, os);
  const std::string csv = os.str();
  // Header + 2 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find("worst_byz_fraction"), std::string::npos);
  EXPECT_NE(csv.find("0.1250"), std::string::npos);
  EXPECT_NE(csv.find("\n50,"), std::string::npos);
}

TEST(ScenarioCsvTest, EmptyResultIsJustTheHeader) {
  ScenarioResult result;
  std::ostringstream os;
  write_samples_csv(result, os);
  const std::string csv = os.str();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1);
}

}  // namespace
}  // namespace now::sim
