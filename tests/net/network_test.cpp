#include "net/network.hpp"

#include <memory>

#include <gtest/gtest.h>

namespace now::net {
namespace {

/// Actor that records its inbox and sends a fixed batch each round.
class EchoActor final : public Actor {
 public:
  EchoActor(NodeId peer, std::vector<std::uint64_t> words)
      : peer_(peer), payload_(pack_words(words)) {}

  void on_round(std::size_t /*round*/, std::span<const Message> inbox,
                Outbox& out) override {
    received_.insert(received_.end(), inbox.begin(), inbox.end());
    out.send(peer_, Tag::kApp, payload_);
  }

  [[nodiscard]] const std::vector<Message>& received() const {
    return received_;
  }

 private:
  NodeId peer_;
  Payload payload_;
  std::vector<Message> received_;
};

TEST(RoundEngineTest, MessagesArriveNextRound) {
  Metrics metrics;
  InProcTransport transport;
  RoundEngine net{metrics, transport};
  auto a = std::make_unique<EchoActor>(NodeId{2},
                                       std::vector<std::uint64_t>{7});
  auto* a_ptr = a.get();
  auto b = std::make_unique<EchoActor>(NodeId{1},
                                       std::vector<std::uint64_t>{9});
  net.add_actor(NodeId{1}, std::move(a));
  net.add_actor(NodeId{2}, std::move(b));

  net.run_round();
  EXPECT_TRUE(a_ptr->received().empty());  // round 0 sends, nothing received
  net.run_round();
  ASSERT_EQ(a_ptr->received().size(), 1u);
  EXPECT_EQ(a_ptr->received()[0].from, NodeId{2});
  EXPECT_EQ(word(a_ptr->received()[0].payload, 0), 9u);
}

TEST(RoundEngineTest, CostsCountPayloadUnits) {
  Metrics metrics;
  InProcTransport transport;
  RoundEngine net{metrics, transport};
  net.add_actor(NodeId{1}, std::make_unique<EchoActor>(
                               NodeId{2}, std::vector<std::uint64_t>{1, 2, 3}));
  net.add_actor(NodeId{2}, std::make_unique<EchoActor>(
                               NodeId{1}, std::vector<std::uint64_t>{}));
  net.run_round();
  // 3 units from actor 1 + 1 unit (empty payload still costs 1) from actor 2.
  EXPECT_EQ(metrics.total().messages, 4u);
  EXPECT_EQ(metrics.total().rounds, 1u);
}

TEST(RoundEngineTest, RemovedActorDropsMail) {
  Metrics metrics;
  InProcTransport transport;
  RoundEngine net{metrics, transport};
  auto a = std::make_unique<EchoActor>(NodeId{2},
                                       std::vector<std::uint64_t>{5});
  auto b = std::make_unique<EchoActor>(NodeId{1},
                                       std::vector<std::uint64_t>{6});
  auto* b_ptr = b.get();
  net.add_actor(NodeId{1}, std::move(a));
  net.add_actor(NodeId{2}, std::move(b));
  net.run_round();
  EXPECT_TRUE(net.remove_actor(NodeId{1}));
  EXPECT_FALSE(net.is_live(NodeId{1}));
  // Messages to the departed node vanish; the network keeps running.
  net.run_round();
  net.run_round();
  EXPECT_FALSE(b_ptr->received().empty());
  EXPECT_EQ(net.num_actors(), 1u);
}

TEST(RoundEngineTest, RemoveUnknownActorReturnsFalse) {
  Metrics metrics;
  InProcTransport transport;
  RoundEngine net{metrics, transport};
  EXPECT_FALSE(net.remove_actor(NodeId{42}));
}

TEST(RoundEngineTest, RoundsAdvance) {
  Metrics metrics;
  InProcTransport transport;
  RoundEngine net{metrics, transport};
  net.add_actor(NodeId{1}, std::make_unique<EchoActor>(
                               NodeId{1}, std::vector<std::uint64_t>{}));
  net.run_rounds(5);
  EXPECT_EQ(net.round(), 5u);
  EXPECT_EQ(metrics.total().rounds, 5u);
}

TEST(OutboxTest, MulticastReachesAllDestinations) {
  Metrics metrics;
  InProcTransport transport;
  RoundEngine net{metrics, transport};

  class Multicaster final : public Actor {
   public:
    void on_round(std::size_t round, std::span<const Message>,
                  Outbox& out) override {
      if (round == 0) {
        const std::vector<NodeId> peers{NodeId{2}, NodeId{3}};
        out.multicast(peers, Tag::kApp, make_words({11}));
      }
    }
  };
  class Sink final : public Actor {
   public:
    void on_round(std::size_t, std::span<const Message> inbox,
                  Outbox&) override {
      count += inbox.size();
    }
    std::size_t count = 0;
  };

  auto s2 = std::make_unique<Sink>();
  auto s3 = std::make_unique<Sink>();
  auto* s2p = s2.get();
  auto* s3p = s3.get();
  net.add_actor(NodeId{1}, std::make_unique<Multicaster>());
  net.add_actor(NodeId{2}, std::move(s2));
  net.add_actor(NodeId{3}, std::move(s3));
  net.run_rounds(2);
  EXPECT_EQ(s2p->count, 1u);
  EXPECT_EQ(s3p->count, 1u);
}

}  // namespace
}  // namespace now::net
