// Transport-layer tests (DESIGN.md §12): wire codec rejection semantics,
// InProcTransport barrier behavior, FaultyTransport determinism, and —
// via fork()ed worker processes over real local TCP — bit-identity of the
// multi-process sharded runtime against the single-process reference,
// including crash-and-restore recovery from checkpoints.
#include "net/transport.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/snapshot.hpp"
#include "net/faulty_transport.hpp"
#include "net/socket_transport.hpp"
#include "net/wire.hpp"
#include "sim/shard_runtime.hpp"

namespace now::net {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------- wire codec

Message sample_message() {
  Message msg;
  msg.from = NodeId{3};
  msg.to = NodeId{11};
  msg.tag = Tag::kShardDigest;
  msg.payload = make_words({0xDEADBEEFCAFEF00DULL, 42, 7});
  return msg;
}

/// Recomputes the trailing checksum after a deliberate header mutation, so
/// decode failures exercise the field validation, not just the checksum.
void patch_checksum(std::vector<std::uint8_t>& frame) {
  const std::uint64_t sum = core::fnv1a64(frame.data(), frame.size() - 8);
  for (std::size_t i = 0; i < 8; ++i) {
    frame[frame.size() - 8 + i] = static_cast<std::uint8_t>(sum >> (8 * i));
  }
}

TEST(WireCodecTest, RoundTripsAllFields) {
  const Message msg = sample_message();
  const Message back = decode_frame(encode_frame(msg));
  EXPECT_EQ(back, msg);
}

TEST(WireCodecTest, RoundTripsEmptyPayload) {
  Message msg;
  msg.from = NodeId{0};
  msg.to = NodeId{1};
  msg.tag = Tag::kShardBye;
  const Message back = decode_frame(encode_frame(msg));
  EXPECT_EQ(back, msg);
  EXPECT_EQ(back.cost_units(), 1u);
}

TEST(WireCodecTest, RejectsEveryTruncation) {
  const auto frame = encode_frame(sample_message());
  for (std::size_t len = 0; len < frame.size(); ++len) {
    EXPECT_THROW(
        (void)decode_frame(std::span<const std::uint8_t>{frame.data(), len}),
        WireError)
        << "prefix length " << len;
  }
}

TEST(WireCodecTest, RejectsEverySingleBitFlip) {
  const auto frame = encode_frame(sample_message());
  for (std::size_t pos = 0; pos < frame.size(); ++pos) {
    auto corrupt = frame;
    corrupt[pos] ^= 0x40;
    EXPECT_THROW((void)decode_frame(corrupt), WireError) << "byte " << pos;
  }
}

TEST(WireCodecTest, RejectsTrailingBytes) {
  auto frame = encode_frame(sample_message());
  frame.push_back(0);
  EXPECT_THROW((void)decode_frame(frame), WireError);
}

TEST(WireCodecTest, RejectsUnknownVersionEvenWithValidChecksum) {
  auto frame = encode_frame(sample_message());
  frame[4] = kWireFormatVersion + 1;
  patch_checksum(frame);
  EXPECT_THROW((void)decode_frame(frame), WireError);
}

TEST(WireCodecTest, RejectsUnknownTagEvenWithValidChecksum) {
  auto frame = encode_frame(sample_message());
  const std::uint16_t bad_tag = kMaxTag + 1;
  frame[5] = static_cast<std::uint8_t>(bad_tag);
  frame[6] = static_cast<std::uint8_t>(bad_tag >> 8);
  patch_checksum(frame);
  EXPECT_THROW((void)decode_frame(frame), WireError);
}

TEST(WireCodecTest, RejectsBadMagicEvenWithValidChecksum) {
  auto frame = encode_frame(sample_message());
  frame[0] = 'X';
  patch_checksum(frame);
  EXPECT_THROW((void)decode_frame(frame), WireError);
}

// -------------------------------------------------------- InProcTransport

TEST(InProcTransportTest, BarrierGatesDeliveryAndCloseDrops) {
  InProcTransport t;
  t.open_endpoint(NodeId{1});
  t.open_endpoint(NodeId{2});
  t.send(Message{NodeId{1}, NodeId{2}, Tag::kApp, make_words({5})});

  std::vector<Message> got;
  t.poll(NodeId{2}, got);
  EXPECT_TRUE(got.empty());  // not deliverable before the barrier

  t.end_round(0);
  t.poll(NodeId{2}, got);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(word(got[0].payload, 0), 5u);

  EXPECT_TRUE(t.close_endpoint(NodeId{2}));
  EXPECT_FALSE(t.is_live(NodeId{2}));
  EXPECT_FALSE(t.close_endpoint(NodeId{2}));
  t.send(Message{NodeId{1}, NodeId{2}, Tag::kApp, {}});
  t.end_round(1);
  t.poll(NodeId{2}, got);
  EXPECT_TRUE(got.empty());  // mail to departed endpoints vanishes
}

// -------------------------------------------------------- FaultyTransport

struct FaultyRun {
  std::vector<std::vector<Message>> delivered;  // per round, all endpoints
  std::vector<FaultEvent> events;
};

/// Drives a fixed all-pairs message schedule through a FaultyTransport for
/// ten rounds (plus drain rounds for in-flight delays) and records the
/// exact delivered trajectory and fault log.
FaultyRun run_faulty_schedule(std::uint64_t seed) {
  InProcTransport inner;
  FaultPlan plan;
  plan.drop = 0.2;
  plan.duplicate = 0.2;
  plan.delay = 0.25;
  plan.max_delay_rounds = 2;
  plan.reorder = 0.5;
  plan.partition = 0.3;
  plan.partition_rounds = 2;
  FaultyTransport faulty{inner, plan, seed};

  constexpr std::uint64_t kNodes = 4;
  for (std::uint64_t id = 1; id <= kNodes; ++id) {
    faulty.open_endpoint(NodeId{id});
  }

  FaultyRun run;
  std::vector<Message> got;
  for (std::size_t round = 0; round < 14; ++round) {
    if (round < 10) {  // rounds 10+ only drain delayed messages
      for (std::uint64_t from = 1; from <= kNodes; ++from) {
        for (std::uint64_t to = 1; to <= kNodes; ++to) {
          if (from == to) continue;
          faulty.send(Message{NodeId{from}, NodeId{to}, Tag::kApp,
                              make_words({round * 100 + from * 10 + to})});
          faulty.send(Message{NodeId{from}, NodeId{to}, Tag::kApp,
                              make_words({round * 1000 + from * 10 + to})});
        }
      }
    }
    faulty.end_round(round);
    std::vector<Message> round_msgs;
    for (std::uint64_t id = 1; id <= kNodes; ++id) {
      faulty.poll(NodeId{id}, got);
      round_msgs.insert(round_msgs.end(), got.begin(), got.end());
    }
    run.delivered.push_back(std::move(round_msgs));
  }
  run.events = faulty.events();
  return run;
}

TEST(FaultyTransportTest, SameSeedReproducesTrajectoryAndFaultLog) {
  const FaultyRun a = run_faulty_schedule(42);
  const FaultyRun b = run_faulty_schedule(42);

  EXPECT_EQ(a.delivered, b.delivered);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind) << "event " << i;
    EXPECT_EQ(a.events[i].round, b.events[i].round) << "event " << i;
    EXPECT_EQ(a.events[i].from, b.events[i].from) << "event " << i;
    EXPECT_EQ(a.events[i].to, b.events[i].to) << "event " << i;
    EXPECT_EQ(a.events[i].until_round, b.events[i].until_round)
        << "event " << i;
  }

  // The plan enables every fault class; with 24 messages x 10 rounds each
  // class fires with overwhelming probability on this fixed seed.
  std::map<FaultEvent::Kind, std::size_t> by_kind;
  for (const FaultEvent& e : a.events) ++by_kind[e.kind];
  EXPECT_GT(by_kind[FaultEvent::Kind::kDrop], 0u);
  EXPECT_GT(by_kind[FaultEvent::Kind::kDuplicate], 0u);
  EXPECT_GT(by_kind[FaultEvent::Kind::kDelay], 0u);
  EXPECT_GT(by_kind[FaultEvent::Kind::kReorder], 0u);
  EXPECT_GT(by_kind[FaultEvent::Kind::kPartition], 0u);
}

TEST(FaultyTransportTest, DelayedMessagesArriveWithinBound) {
  const FaultyRun run = run_faulty_schedule(7);
  // Everything sent by round 9 with max delay 2 is delivered by round 12's
  // poll; the drain rounds past that must be empty.
  EXPECT_TRUE(run.delivered.at(13).empty());
  for (const FaultEvent& e : run.events) {
    if (e.kind == FaultEvent::Kind::kDelay) {
      EXPECT_GT(e.until_round, e.round);
      EXPECT_LE(e.until_round, e.round + 2);
    }
  }
}

TEST(FaultyTransportTest, FaultEventLogRoundTripsThroughSnapshot) {
  InProcTransport inner;
  FaultPlan plan;
  plan.drop = 0.5;
  FaultyTransport faulty{inner, plan, 3};
  faulty.open_endpoint(NodeId{1});
  faulty.open_endpoint(NodeId{2});
  for (std::size_t round = 0; round < 8; ++round) {
    faulty.send(Message{NodeId{1}, NodeId{2}, Tag::kApp, make_words({round})});
    faulty.end_round(round);
  }
  ASSERT_FALSE(faulty.events().empty());

  const std::string path =
      (fs::temp_directory_path() /
       ("now_fault_events_" + std::to_string(::getpid()) + ".bin"))
          .string();
  faulty.save_events(path);
  core::SnapshotReader reader =
      core::SnapshotReader::read_file(path, "NWFAULTS", 1, 1);
  const std::uint64_t count = reader.u64();
  ASSERT_EQ(count, faulty.events().size());
  for (std::uint64_t i = 0; i < count; ++i) {
    const FaultEvent& e = faulty.events()[i];
    EXPECT_EQ(reader.u8(), static_cast<std::uint8_t>(e.kind));
    EXPECT_EQ(reader.u64(), e.round);
    EXPECT_EQ(reader.u64(), e.from.value());
    EXPECT_EQ(reader.u64(), e.to.value());
    EXPECT_EQ(reader.u64(), e.until_round);
  }
  fs::remove(path);
}

// ------------------------------------------------- sharded runtime parity

sim::ShardSpec small_spec(std::uint64_t seed) {
  sim::ShardSpec spec;
  spec.num_shards = 2;
  spec.steps = 4;
  spec.batch_ops = 2;
  spec.n0 = 24;
  spec.seed = seed;
  return spec;
}

TEST(ShardRuntimeTest, FaultsDoNotChangeTheTrajectory) {
  const sim::ShardSpec spec = small_spec(11);
  const sim::ShardRunResult ref = sim::run_single_process(spec);
  ASSERT_EQ(ref.steps_completed, spec.steps);
  ASSERT_NE(ref.run_digest, 0u);

  FaultPlan plan;
  plan.drop = 0.1;
  plan.duplicate = 0.1;
  plan.delay = 0.15;
  plan.reorder = 0.2;
  plan.partition = 0.2;
  plan.partition_rounds = 3;
  const sim::ShardRunResult faulted =
      sim::run_single_process(spec, &plan, 99);

  // Faults stretch the run (retransmissions) but must not perturb any
  // shard's state trajectory: the digests are bit-equal.
  EXPECT_EQ(faulted.run_digest, ref.run_digest);
  EXPECT_EQ(faulted.step_digests, ref.step_digests);
  EXPECT_GE(faulted.engine_rounds, ref.engine_rounds);
}

/// Forks a worker process for `shard` connecting to the hub at `port`.
/// The child never returns; it exits 0 on success, 1 on any exception,
/// or ShardWorkerActor::kCrashExitCode when `crash_after` triggers.
pid_t spawn_worker_process(const sim::ShardSpec& spec, std::size_t shard,
                           std::uint16_t port, std::size_t crash_after = 0) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  int code = 0;
  try {
    auto spoke = SocketSpoke::connect(port, shard);
    sim::run_worker(spec, shard, *spoke, crash_after);
  } catch (...) {
    code = 1;
  }
  std::_Exit(code);
}

TEST(SocketParityTest, MultiProcessRunMatchesInProcDigest) {
  const sim::ShardSpec spec = small_spec(17);
  const sim::ShardRunResult ref = sim::run_single_process(spec);

  auto hub = SocketHub::listen(spec.num_shards);
  std::vector<pid_t> pids;
  for (std::size_t s = 0; s < spec.num_shards; ++s) {
    pids.push_back(spawn_worker_process(spec, s, hub->port()));
  }
  hub->accept_initial();
  const sim::ShardRunResult result = sim::run_hub(spec, *hub, *hub);

  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }
  EXPECT_EQ(result.run_digest, ref.run_digest);
  EXPECT_EQ(result.step_digests, ref.step_digests);
  EXPECT_EQ(result.steps_completed, ref.steps_completed);
  EXPECT_EQ(result.final_stats.num_nodes, ref.final_stats.num_nodes);
  EXPECT_EQ(result.final_stats.messages, ref.final_stats.messages);
}

TEST(SocketParityTest, CrashedWorkerRestoresFromCheckpointAndReproduces) {
  sim::ShardSpec spec = small_spec(23);
  spec.steps = 5;
  spec.checkpoint_every = 2;
  spec.checkpoint_dir =
      (fs::temp_directory_path() /
       ("now_transport_test_ckpt_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(spec.checkpoint_dir);
  fs::create_directories(spec.checkpoint_dir);

  sim::ShardSpec ref_spec = spec;  // reference must not touch checkpoints
  ref_spec.checkpoint_every = 0;
  ref_spec.checkpoint_dir.clear();
  const sim::ShardRunResult ref = sim::run_single_process(ref_spec);

  auto hub = SocketHub::listen(spec.num_shards);
  std::map<std::uint64_t, pid_t> worker_pid;
  worker_pid[0] = spawn_worker_process(spec, 0, hub->port());
  // Shard 1 checkpoints at step 2 and crashes right after step 3.
  worker_pid[1] = spawn_worker_process(spec, 1, hub->port(),
                                       /*crash_after=*/3);
  hub->accept_initial();

  int respawns = 0;
  const sim::ShardRunResult result = sim::run_hub(
      spec, *hub, *hub, [&](bool finished) {
        for (const std::uint64_t shard : hub->drain_dead_processes()) {
          int status = 0;
          ::waitpid(worker_pid.at(shard), &status, 0);
          if (finished) continue;  // orderly end-of-run exits
          worker_pid[shard] =
              spawn_worker_process(spec, shard, hub->port());
          ++respawns;
        }
      });

  for (const auto& [shard, pid] : worker_pid) {
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
  EXPECT_EQ(respawns, 1);
  EXPECT_EQ(result.run_digest, ref.run_digest);
  EXPECT_EQ(result.step_digests, ref.step_digests);
  EXPECT_EQ(result.steps_completed, ref.steps_completed);
  fs::remove_all(spec.checkpoint_dir);
}

}  // namespace
}  // namespace now::net
